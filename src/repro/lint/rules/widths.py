"""WID rules: abstract interpretation of predictor bit-width contracts.

Every number a predictor manipulates is a fixed-width hardware value —
``log2(table_size)``-bit indices, ``bits``-wide saturating counters,
``length``-bit history registers — and a single unmasked shift or
off-by-one saturation silently corrupts MISP/KI.  The syntactic rules
(BIT001) can demand that masking *goes through* the checked helpers;
they cannot prove the masked value actually fits the table it indexes.
These rules can, by abstractly interpreting each predictor class over
the symbolic interval domain of :mod:`repro.lint.intervals`:

WID001
    Every subscript of a counter table, tag list, or bank tuple is
    provably in ``[0, table_size)``.
WID002
    Every store into a counter file provably stays within the declared
    counter width — saturation is *verified*, never assumed.
WID003
    Every history-register shift-in is provably masked back to the
    declared history width before it is stored.
WID004
    A ``%`` whose right operand is provably a power of two should be an
    AND mask (perf; unifies with BIT001 for literal masks).

How the analysis works
----------------------
For each class deriving from ``BranchPredictor`` (or carrying a
``_WIDTHS`` declaration — ``CounterTable`` and ``GlobalHistory`` opt in
this way), the checker

1. evaluates ``__init__`` with strong updates, applying *constructor
   postconditions*: ``CounterTable(entries, bits=b)`` refines
   ``entries`` to an exact symbolic power of two ``2**k`` and models the
   table (``.values`` in ``[0, 2**b - 1]``, ``.mask == entries - 1``,
   ``.threshold == 2**(b-1)``); ``GlobalHistory(n)`` models an
   ``n``-bit register; ``raise`` guards refine the surviving branch
   (``if not is_power_of_two(e): raise`` proves ``e`` is a power of
   two afterwards);
2. iterates the remaining methods to a fixpoint with weak (joined)
   attribute updates, so ``predict``-cached state like
   ``self._last_index`` carries its ``[0, mask]`` range into
   ``update`` — this generalizes the ``_PREDICT_STATE`` contract;
3. re-walks every *root* method (one never called via ``self.m(...)``)
   emitting findings; ``self``-method calls are inlined per call site,
   so helpers like ``_train(table, index, taken)`` are checked with the
   precise arguments of each caller.

Deliberate approximations (all fail-safe — they can only *miss*
findings on containers the model does not track, never invent them on
tracked ones, and the acceptance fixtures in
``tests/test_lint_widths.py`` pin the must-catch cases):

* A raw parameter used directly as an index is a trust boundary (the
  call sites are checked instead), mirroring how
  :mod:`repro.lint.dataflow` treats parameters for seed provenance.
* A tuple of same-shape tables (bi-mode banks, yags caches) is modelled
  by a representative element; stores through a variable bank index are
  checked against the shared invariant.
* Attributes holding unmodelled objects (nested predictors, skew lookup
  tables) evaluate to ⊤ and their subscripts are not checked.
* Reassigning a local re-uses its value token, so a joined variable
  still unifies with ``1 << var`` masks computed from it.

``_WIDTHS`` declarations
------------------------
Width-carrying state must be *declared* on the class::

    _WIDTHS = {"table": "counter_bits", "history": "history_length"}

Each key is an attribute; each value is the source text of the width it
was constructed with (the ``bits=`` argument of ``CounterTable``, the
constructor argument of ``GlobalHistory``, or — for raw ``list`` state
like ``LocalHistoryPredictor.histories`` and scalar registers like
``GlobalHistory.value`` — the name of the ``__init__`` local holding
the width, which turns the list/scalar into checked history state).
WID002/WID003 also enforce the declarations both ways: an undeclared
counter table or history register is a finding, and so is a stale or
mismatched entry.
"""

from __future__ import annotations

import ast
import typing

from repro.lint.dataflow import ReachingDefinitions
from repro.lint.findings import Finding, Severity
from repro.lint.graph import module_name_for
from repro.lint.intervals import (
    BOOL,
    ONE,
    TOP,
    Bound,
    Interval,
    Pow2Sym,
    ZERO,
    binop,
    bound_le,
    definition_range,
    is_exact_pow2,
    iv_max,
    iv_min,
    unop,
)
from repro.lint.rules import FileRule, ProjectRule, register
from repro.lint.rules.bitops import _is_power_of_two_expr

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.engine import FileContext, ProjectContext

__all__ = [
    "IndexBoundsRule",
    "CounterSaturationRule",
    "HistoryWidthRule",
    "ProvablePow2ModuloRule",
]

_PREDICTOR_BASE = "BranchPredictor"
_WIDTHS_ATTR = "_WIDTHS"
_ANCHOR = "predictors/base.py"

#: repro helpers the evaluator models (resolved through import aliases).
_INTRINSICS = frozenset({
    "CounterTable", "GlobalHistory", "is_power_of_two", "log2_exact",
    "bit_mask", "fold_bits", "mix64", "reverse_bits", "rotate_left",
    "pc_index", "fold_history", "gshare_index", "skew_h", "skew_h_inv",
    "skew_tables",
})

_AST_BINOPS = {
    ast.Add: "+", ast.Sub: "-", ast.BitAnd: "&", ast.BitOr: "|",
    ast.BitXor: "^", ast.LShift: "<<", ast.RShift: ">>", ast.Mod: "%",
    ast.Mult: "*", ast.FloorDiv: "//", ast.Pow: "**",
}

_AST_UNOPS = {ast.UAdd: "+", ast.USub: "-", ast.Invert: "~", ast.Not: "not"}

_NEGATED_CMP = {"<": ">=", "<=": ">", ">": "<=", ">=": "<",
                "==": "!=", "!=": "=="}
_MIRRORED_CMP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
                 "==": "==", "!=": "!="}
_CMP_OPS = {ast.Lt: "<", ast.LtE: "<=", ast.Gt: ">", ast.GtE: ">=",
            ast.Eq: "==", ast.NotEq: "!="}

_MAX_FIXPOINT_ROUNDS = 8
_MAX_INLINE_DEPTH = 8


# --------------------------------------------------------------------------
# Abstract values beyond plain intervals.


class InstanceVal:
    """The ``self`` object of the class under analysis."""

    __slots__ = ()


class RangeVal:
    """A ``range(...)`` object; iterating yields ``iv``."""

    __slots__ = ("iv",)

    def __init__(self, iv: Interval):
        self.iv = iv


class ListVal:
    """A list.

    ``kind`` is ``"state"`` (elements join freely), ``"counter"`` or
    ``"history"`` (reads return ``invariant``, stores are checked
    against it — WID002 / WID003).
    """

    __slots__ = ("length", "elem", "kind", "invariant", "describe")

    def __init__(self, length: Bound | None, elem: Interval,
                 kind: str = "state", invariant: Interval | None = None,
                 describe: str = "list"):
        self.length = length
        self.elem = elem
        self.kind = kind
        self.invariant = invariant
        self.describe = describe


class TupleVal:
    """A tuple with per-element abstract values."""

    __slots__ = ("elems", "describe")

    def __init__(self, elems: list, describe: str = "tuple"):
        self.elems = elems
        self.describe = describe


class TableObj:
    """A ``CounterTable``: the constructor postcondition in object form."""

    __slots__ = ("size", "max_value", "threshold", "bits", "bits_text",
                 "values", "describe")

    def __init__(self, size: Bound, max_value: Bound, threshold: Bound,
                 bits: Interval, bits_text: str, describe: str):
        self.size = size
        self.max_value = max_value
        self.threshold = threshold
        self.bits = bits
        self.bits_text = bits_text
        self.describe = describe
        self.values = ListVal(
            size, Interval(ZERO, max_value), kind="counter",
            invariant=Interval(ZERO, max_value),
            describe=f"{describe}.values",
        )


class HistObj:
    """A ``GlobalHistory``: ``value`` reads give ``[0, mask]``, stores
    are checked against it (WID003)."""

    __slots__ = ("mask", "length", "width_text", "describe")

    def __init__(self, mask: Bound, length: Interval, width_text: str,
                 describe: str):
        self.mask = mask
        self.length = length
        self.width_text = width_text
        self.describe = describe


class RegVal:
    """A scalar attribute promoted to a checked history register by a
    ``_WIDTHS`` declaration (e.g. ``GlobalHistory.value``)."""

    __slots__ = ("invariant", "describe")

    def __init__(self, invariant: Interval, describe: str):
        self.invariant = invariant
        self.describe = describe


class NumpyMod:
    """The ``numpy`` module object, bound by an ``import numpy``."""

    __slots__ = ()


NUMPY = NumpyMod()

#: numpy integer dtypes as value ranges.  A dtype is a *width
#: declaration the checker trusts structurally*: casting wraps every
#: element into the dtype's representable range, so an array built with
#: ``dtype=numpy.uint8`` provably holds values in ``[0, 255]`` no matter
#: what went in.  ``intp`` is modeled at its widest (64-bit) layout,
#: which is sound on every narrower platform.
_NUMPY_DTYPES = {
    "bool_": (0, 1),
    "uint8": (0, (1 << 8) - 1),
    "uint16": (0, (1 << 16) - 1),
    "uint32": (0, (1 << 32) - 1),
    "uint64": (0, (1 << 64) - 1),
    "int8": (-(1 << 7), (1 << 7) - 1),
    "int16": (-(1 << 15), (1 << 15) - 1),
    "int32": (-(1 << 31), (1 << 31) - 1),
    "int64": (-(1 << 63), (1 << 63) - 1),
    "intp": (-(1 << 63), (1 << 63) - 1),
}


class DtypeVal:
    """A numpy integer dtype: the value range it wraps casts into."""

    __slots__ = ("iv",)

    def __init__(self, iv: Interval):
        self.iv = iv


def _is_ndarray(value) -> bool:
    return isinstance(value, ListVal) and value.describe == "ndarray"


def _join(a, b):
    """Join two abstract values; incompatible shapes widen to ``TOP``."""
    if a is None:
        return b if b is not None else TOP
    if b is None:
        return a
    if a is b:
        return a
    if isinstance(a, Interval) and isinstance(b, Interval):
        return a.join(b)
    if isinstance(a, InstanceVal) and isinstance(b, InstanceVal):
        return a
    if isinstance(a, RangeVal) and isinstance(b, RangeVal):
        return RangeVal(a.iv.join(b.iv))
    if isinstance(a, (RegVal, HistObj)) and type(a) is type(b):
        return a
    if isinstance(a, TableObj) and isinstance(b, TableObj):
        if a.size == b.size and a.max_value == b.max_value:
            return a
        return TOP
    if isinstance(a, ListVal) and isinstance(b, ListVal):
        if a.kind == b.kind and a.length == b.length:
            if a.kind == "state":
                a.elem = a.elem.join(b.elem)
            return a
        return TOP
    if isinstance(a, TupleVal) and isinstance(b, TupleVal):
        if len(a.elems) == len(b.elems):
            return TupleVal([_join(x, y) for x, y in zip(a.elems, b.elems)],
                            a.describe)
        return TOP
    if isinstance(a, NumpyMod) and isinstance(b, NumpyMod):
        return a
    if isinstance(a, DtypeVal) and isinstance(b, DtypeVal):
        return DtypeVal(a.iv.join(b.iv))
    return TOP


def _as_iv(value) -> Interval:
    return value if isinstance(value, Interval) else TOP


# --------------------------------------------------------------------------
# Per-module environment: import aliases and module-level constants.


def _const_expr(node: ast.expr) -> int | None:
    """Evaluate a module-level constant integer expression, or None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int) \
            and not isinstance(node.value, bool):
        return node.value
    if isinstance(node, ast.BinOp):
        op = _AST_BINOPS.get(type(node.op))
        left = _const_expr(node.left)
        right = _const_expr(node.right)
        if op and left is not None and right is not None:
            try:
                result = binop(op, Interval.const(left),
                               Interval.const(right))
            except (OverflowError, ValueError):  # pragma: no cover
                return None
            if result.is_singleton and result.lo.is_const:
                return result.lo.off
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _const_expr(node.operand)
        return None if inner is None else -inner
    return None


def _module_constants(ctx: "FileContext") -> dict[str, int]:
    """Module-level ``NAME = <const int>`` bindings of one file."""
    consts: dict[str, int] = {}
    for stmt in ctx.tree.body:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        if isinstance(target, ast.Name):
            value = _const_expr(stmt.value)
            if value is not None:
                consts[target.id] = value
        elif isinstance(target, ast.Tuple) and all(
                isinstance(e, ast.Name) for e in target.elts):
            # The ``_BIM, _G0, _G1, _META = range(4)`` idiom.
            value = stmt.value
            if (isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id == "range"
                    and len(value.args) == 1 and not value.keywords):
                count = _const_expr(value.args[0])
                if count is not None and count == len(target.elts):
                    for i, elt in enumerate(target.elts):
                        consts[elt.id] = i
    return consts


class _ModuleEnv:
    """Intrinsic aliases and integer constants visible in one module."""

    __slots__ = ("aliases", "consts", "numpy_names")

    def __init__(self, ctx: "FileContext",
                 project_consts: dict[str, dict[str, int]]):
        self.aliases: dict[str, str] = {}
        self.consts: dict[str, int] = dict(_module_constants(ctx))
        self.numpy_names: set[str] = set()
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    if alias.name == "numpy":
                        self.numpy_names.add(alias.asname or alias.name)
                continue
            if not isinstance(stmt, ast.ImportFrom) or stmt.module is None:
                continue
            source = project_consts.get(stmt.module, {})
            for alias in stmt.names:
                local = alias.asname or alias.name
                if alias.name in _INTRINSICS:
                    self.aliases[local] = alias.name
                elif alias.name in source:
                    self.consts[local] = source[alias.name]


def _project_consts(project: "ProjectContext") -> dict[str, dict[str, int]]:
    return {module_name_for(ctx): _module_constants(ctx)
            for ctx in project.files}


# --------------------------------------------------------------------------
# The per-class abstract interpreter.


def _base_names(cls_node: ast.ClassDef) -> list[str]:
    names = []
    for base in cls_node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _widths_decl(cls_node: ast.ClassDef):
    """The class's ``_WIDTHS`` dict (attr -> width text) and its node."""
    for stmt in cls_node.body:
        if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == _WIDTHS_ATTR
                and isinstance(stmt.value, ast.Dict)):
            decl: dict[str, str] = {}
            for key, value in zip(stmt.value.keys, stmt.value.values):
                if (isinstance(key, ast.Constant) and isinstance(key.value, str)
                        and isinstance(value, ast.Constant)
                        and isinstance(value.value, str)):
                    decl[key.value] = value.value
            return decl, stmt
    return {}, None


class _ClassAnalysis:
    """Abstractly interpret one predictor class and collect WID findings."""

    def __init__(self, cls_node: ast.ClassDef, module_env: _ModuleEnv):
        self.cls = cls_node
        self.module_env = module_env
        self.methods: dict[str, ast.FunctionDef] = {}
        for stmt in cls_node.body:
            if isinstance(stmt, ast.FunctionDef):
                self.methods[stmt.name] = stmt
        self.declared, self.declared_node = _widths_decl(cls_node)
        self.param_tokens: set[tuple] = set()
        for name, fn in self.methods.items():
            args = fn.args
            for arg in (args.posonlyargs + args.args + args.kwonlyargs):
                self.param_tokens.add((name, arg.arg))
        self.instance = InstanceVal()
        self.attrs: dict[str, object] = {}
        self.syms: dict[tuple, Pow2Sym] = {}
        self.widths: dict[tuple, Bound] = {}
        self.findings: set[tuple] = set()
        self.checking = False
        self.strong = False
        self.method = "?"
        self.call_stack: list[str] = []
        self.returns: list = []

    # -- driver ------------------------------------------------------------

    def run(self) -> None:
        internal = self._internally_called()
        init = self.methods.get("__init__")
        if init is not None:
            self._eval_method(init, strong=True)
        for _ in range(_MAX_FIXPOINT_ROUNDS):
            before = self._snapshot()
            for name in sorted(self.methods):
                if name != "__init__":
                    self._eval_method(self.methods[name], strong=False)
            if self._snapshot() == before:
                break
        self.checking = True
        for name in sorted(self.methods):
            if name in internal:
                continue  # checked inline, with per-call-site arguments
            self._eval_method(self.methods[name], strong=False)
        self._check_declarations()

    def _internally_called(self) -> set[str]:
        called: set[str] = set()
        for fn in self.methods.values():
            for node in ast.walk(fn):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and isinstance(node.func.value, ast.Name)
                        and node.func.value.id == "self"):
                    called.add(node.func.attr)
        return called

    def _snap(self, value, depth: int = 0):
        if depth > 4 or value is None:
            return "none"
        if isinstance(value, Interval):
            return ("iv", value.lo, value.hi, value.token)
        if isinstance(value, ListVal):
            return ("list", id(value), value.length, value.kind,
                    self._snap(value.elem, depth + 1))
        if isinstance(value, TupleVal):
            return ("tuple", tuple(self._snap(e, depth + 1)
                                   for e in value.elems))
        if isinstance(value, RangeVal):
            return ("range", value.iv.lo, value.iv.hi)
        return (type(value).__name__, id(value))

    def _snapshot(self):
        return tuple((name, self._snap(self.attrs[name]))
                     for name in sorted(self.attrs))

    # -- bookkeeping helpers ----------------------------------------------

    def _sym(self, key: tuple, label: str, min_exp: int = 0) -> Pow2Sym:
        sym = self.syms.get(key)
        if sym is None:
            sym = Pow2Sym(key, label, min_exp)
            self.syms[key] = sym
        else:
            sym.require_min_exp(min_exp)
        return sym

    def _report(self, rule_id: str, node: ast.AST, message: str) -> None:
        if self.checking:
            self.findings.add((rule_id, getattr(node, "lineno", 1),
                               getattr(node, "col_offset", 0), message))

    # -- method evaluation -------------------------------------------------

    def _seed_param(self, method: str, arg: ast.arg) -> Interval:
        base = TOP
        annotation = arg.annotation
        if isinstance(annotation, ast.Name) and annotation.id == "bool":
            base = BOOL
        return base.with_token((method, arg.arg))

    def _eval_method(self, fn: ast.FunctionDef, strong: bool) -> None:
        saved_method, saved_strong = self.method, self.strong
        self.method, self.strong = fn.name, strong
        env: dict[str, object] = {}
        args = fn.args
        params = args.posonlyargs + args.args
        if params and params[0].arg == "self":
            env["self"] = self.instance
            params = params[1:]
        for arg in params + args.kwonlyargs:
            env[arg.arg] = self._seed_param(fn.name, arg)
        for arg in (args.vararg, args.kwarg):
            if arg is not None:
                env[arg.arg] = TOP
        self._exec_block(fn.body, env)
        self.method, self.strong = saved_method, saved_strong

    def _call_method(self, fn: ast.FunctionDef, pos_args: list,
                     kw_args: dict[str, object]):
        if fn.name in self.call_stack or len(self.call_stack) >= _MAX_INLINE_DEPTH:
            return TOP
        self.call_stack.append(fn.name)
        saved_method, saved_strong = self.method, self.strong
        saved_returns = self.returns
        self.method, self.strong, self.returns = fn.name, False, []
        env: dict[str, object] = {"self": self.instance}
        args = fn.args
        params = (args.posonlyargs + args.args)[1:]  # drop self
        defaults = list(args.defaults)
        default_by_name: dict[str, ast.expr] = {}
        for arg, node in zip(params[len(params) - len(defaults):], defaults):
            default_by_name[arg.arg] = node
        for arg, node in zip(args.kwonlyargs, args.kw_defaults):
            if node is not None:
                default_by_name[arg.arg] = node
        for i, arg in enumerate(params + args.kwonlyargs):
            if i < len(pos_args) and arg in params:
                env[arg.arg] = pos_args[i]
            elif arg.arg in kw_args:
                env[arg.arg] = kw_args[arg.arg]
            elif arg.arg in default_by_name:
                env[arg.arg] = self._eval(default_by_name[arg.arg],
                                          {"self": self.instance})
            else:
                env[arg.arg] = self._seed_param(fn.name, arg)
        self._exec_block(fn.body, env)
        result = TOP
        for value in self.returns:
            result = _join(result, value) if result is not TOP else value
        if not self.returns:
            result = TOP
        self.method, self.strong = saved_method, saved_strong
        self.returns = saved_returns
        self.call_stack.pop()
        return result

    # -- statements --------------------------------------------------------

    def _exec_block(self, body: list, env: dict):
        current = env
        for stmt in body:
            current = self._exec_stmt(stmt, current)
            if current is None:
                return None
        return current

    def _join_envs(self, a: dict, b: dict) -> dict:
        merged: dict[str, object] = {}
        for key in sorted(set(a) | set(b)):
            if key in a and key in b:
                merged[key] = _join(a[key], b[key])
            else:
                merged[key] = TOP
        return merged

    def _exec_stmt(self, stmt: ast.stmt, env: dict):
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, env)
            for target in stmt.targets:
                self._assign(target, value, env, stmt.value)
            return env
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, self._eval(stmt.value, env), env,
                             stmt.value)
            return env
        if isinstance(stmt, ast.AugAssign):
            op = _AST_BINOPS.get(type(stmt.op))
            old = _as_iv(self._eval(stmt.target, env))
            new = _as_iv(self._eval(stmt.value, env))
            result = binop(op, old, new) if op else TOP
            self._assign(stmt.target, result, env, None)
            return env
        if isinstance(stmt, ast.Return):
            self.returns.append(self._eval(stmt.value, env)
                                if stmt.value is not None else TOP)
            return None
        if isinstance(stmt, ast.Raise):
            return None
        if isinstance(stmt, ast.If):
            self._eval(stmt.test, env)
            then_env = self._refine(dict(env), stmt.test, True)
            else_env = self._refine(dict(env), stmt.test, False)
            then_out = self._exec_block(stmt.body, then_env)
            else_out = (self._exec_block(stmt.orelse, else_env)
                        if stmt.orelse else else_env)
            if then_out is None and else_out is None:
                return None
            survivor = then_out if else_out is None else else_out
            merged = (survivor if then_out is None or else_out is None
                      else self._join_envs(then_out, else_out))
            env.clear()
            env.update(merged)
            return env
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            iterable = self._eval(stmt.iter, env)
            elem = self._iter_elem(iterable)
            # Two rounds approximate the loop fixpoint for the simple
            # accumulation-free bodies predictors write.
            for _ in range(2):
                self._assign(stmt.target, elem, env, None)
                out = self._exec_block(stmt.body, dict(env))
                if out is not None:
                    merged = self._join_envs(env, out)
                    env.clear()
                    env.update(merged)
            if stmt.orelse:
                self._exec_block(stmt.orelse, env)
            return env
        if isinstance(stmt, ast.While):
            self._eval(stmt.test, env)
            for _ in range(2):
                out = self._exec_block(stmt.body, dict(env))
                if out is not None:
                    merged = self._join_envs(env, out)
                    env.clear()
                    env.update(merged)
            if stmt.orelse:
                self._exec_block(stmt.orelse, env)
            return env
        if isinstance(stmt, ast.Expr):
            self._eval(stmt.value, env)
            return env
        if isinstance(stmt, ast.Assert):
            self._eval(stmt.test, env)
            self._refine(env, stmt.test, True)
            return env
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, TOP, env, None)
            return self._exec_block(stmt.body, env)
        if isinstance(stmt, ast.Try):
            out = self._exec_block(stmt.body, dict(env))
            branches = [] if out is None else [out]
            for handler in stmt.handlers:
                handler_env = dict(env)
                if handler.name:
                    handler_env[handler.name] = TOP
                handler_out = self._exec_block(handler.body, handler_env)
                if handler_out is not None:
                    branches.append(handler_out)
            if not branches:
                return None
            merged = branches[0]
            for branch in branches[1:]:
                merged = self._join_envs(merged, branch)
            env.clear()
            env.update(merged)
            if stmt.finalbody:
                return self._exec_block(stmt.finalbody, env)
            return env
        if isinstance(stmt, ast.Import):
            # The lazy ``import numpy`` idiom of optional-dependency
            # methods binds the module object we model.
            for alias in stmt.names:
                if alias.name == "numpy":
                    env[alias.asname or "numpy"] = NUMPY
            return env
        # Pass / Break / Continue / Delete / Global / ImportFrom /
        # nested defs: no abstract effect we track.
        return env

    # -- assignment targets ------------------------------------------------

    def _assign(self, target: ast.AST, value, env: dict,
                value_node: ast.expr | None) -> None:
        if isinstance(target, ast.Name):
            if isinstance(value, Interval):
                # Reassignment re-uses the variable's token: a joined
                # variable still unifies with masks computed from it.
                value = value.with_token((self.method, target.id))
            env[target.id] = value
        elif isinstance(target, ast.Attribute):
            base = self._eval(target.value, env)
            if isinstance(base, InstanceVal):
                self._store_attr(target.attr, value, env, target, value_node)
            elif isinstance(base, HistObj) and target.attr == "value":
                self._check_store("WID003", base.describe,
                                  Interval(ZERO, base.mask), value, target)
        elif isinstance(target, ast.Subscript):
            base = self._eval(target.value, env)
            if isinstance(target.slice, ast.Slice):
                return
            index = _as_iv(self._eval(target.slice, env))
            self._store_subscript(base, index, value, target)
        elif isinstance(target, (ast.Tuple, ast.List)):
            if (isinstance(value, TupleVal)
                    and len(value.elems) == len(target.elts)):
                for elt, elem in zip(target.elts, value.elems):
                    self._assign(elt, elem, env, None)
            else:
                for elt in target.elts:
                    self._assign(elt, TOP, env, None)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, TOP, env, None)

    def _spec_invariant(self, spec: str, env: dict) -> Interval:
        """``[0, 2**spec - 1]`` for a declared width name or literal."""
        if spec.isdigit():
            return Interval(ZERO, Bound((1 << int(spec)) - 1))
        min_exp = 0
        width = env.get(spec)
        if (isinstance(width, Interval) and width.lo is not None
                and width.lo.is_const):
            min_exp = max(0, width.lo.off)
        sym = self._sym(("shl", ("__init__", spec)), f"2**{spec}", min_exp)
        return Interval(ZERO, Bound(-1, sym, 0))

    def _store_attr(self, name: str, value, env: dict, target: ast.AST,
                    value_node: ast.expr | None) -> None:
        existing = self.attrs.get(name)
        if isinstance(existing, RegVal):
            self._check_store("WID003", existing.describe, existing.invariant,
                              value, target)
            return
        if isinstance(existing, ListVal) and existing.kind in (
                "counter", "history"):
            if isinstance(value, ListVal):
                rule = "WID002" if existing.kind == "counter" else "WID003"
                self._check_store(rule, existing.describe, existing.invariant,
                                  value.elem, target)
                return
        if name in self.declared:
            spec = self.declared[name]
            if isinstance(value, Interval):
                invariant = self._spec_invariant(spec, env)
                reg = RegVal(invariant, f"self.{name}")
                self._check_store("WID003", reg.describe, invariant, value,
                                  target)
                self.attrs[name] = reg
                return
            if isinstance(value, ListVal) and value.kind == "state":
                value.kind = "history" if "hist" in name else "counter"
                value.invariant = self._spec_invariant(spec, env)
                value.describe = f"self.{name}"
                rule = "WID002" if value.kind == "counter" else "WID003"
                self._check_store(rule, value.describe, value.invariant,
                                  value.elem, target)
                value.elem = value.invariant
                self.attrs[name] = value
                return
        self._label_container(name, value)
        if self.strong:
            self.attrs[name] = value
        else:
            self.attrs[name] = _join(existing, value)

    def _label_container(self, name: str, value) -> None:
        if isinstance(value, TableObj) and value.describe.startswith("table@"):
            value.describe = f"self.{name}"
            value.values.describe = f"self.{name}.values"
        elif isinstance(value, HistObj) and value.describe.startswith("hist@"):
            value.describe = f"self.{name}"
        elif isinstance(value, ListVal) and value.describe == "list":
            value.describe = f"self.{name}"
        elif isinstance(value, TupleVal) and value.describe == "tuple":
            value.describe = f"self.{name}"
            shared = all(e is value.elems[0] for e in value.elems)
            for i, elem in enumerate(value.elems):
                suffix = "[*]" if shared else f"[{i}]"
                if isinstance(elem, TableObj) \
                        and elem.describe.startswith("table@"):
                    elem.describe = f"self.{name}{suffix}"
                    elem.values.describe = f"self.{name}{suffix}.values"
                elif isinstance(elem, ListVal) and elem.describe == "list":
                    elem.describe = f"self.{name}{suffix}"
                if shared:
                    break

    def _store_subscript(self, base, index: Interval, value,
                         node: ast.AST) -> None:
        if isinstance(base, ListVal):
            self._check_index(base.describe, base.length, index, node)
            if base.kind == "counter":
                self._check_store("WID002", base.describe, base.invariant,
                                  value, node)
            elif base.kind == "history":
                self._check_store("WID003", base.describe, base.invariant,
                                  value, node)
            else:
                base.elem = base.elem.join(_as_iv(value))
        elif isinstance(base, TupleVal):
            self._check_index(base.describe, Bound(len(base.elems)), index,
                              node)

    # -- the three checks --------------------------------------------------

    def _check_index(self, describe: str, length: Bound | None,
                     index: Interval, node: ast.AST) -> None:
        if not self.checking or length is None:
            return
        if (index.lo is None and index.hi is None
                and index.token in self.param_tokens):
            return  # a raw parameter is the caller's trust boundary
        ok = (index.lo is not None and bound_le(ZERO, index.lo)
              and index.hi is not None
              and bound_le(index.hi, length.add_const(-1)))
        if not ok:
            self._report(
                "WID001", node,
                f"index into {describe} is not provably in "
                f"[0, {length.render()}): inferred range "
                f"{index.render()}",
            )

    def _check_store(self, rule_id: str, describe: str,
                     invariant: Interval | None, value, node: ast.AST) -> None:
        if not self.checking or invariant is None:
            return
        iv = _as_iv(value)
        lo_ok = (invariant.lo is None
                 or (iv.lo is not None and bound_le(invariant.lo, iv.lo)))
        hi_ok = (invariant.hi is None
                 or (iv.hi is not None and bound_le(iv.hi, invariant.hi)))
        if not (lo_ok and hi_ok):
            what = ("counter store into" if rule_id == "WID002"
                    else "history value stored to")
            self._report(
                rule_id, node,
                f"{what} {describe} is not provably within "
                f"{invariant.render()}: inferred range {iv.render()}",
            )

    # -- expressions -------------------------------------------------------

    def _eval(self, node: ast.expr, env: dict):
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return Interval.const(int(node.value))
            if isinstance(node.value, int):
                return Interval.const(node.value)
            return TOP
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            if node.id in self.module_env.consts:
                return Interval.const(self.module_env.consts[node.id])
            if node.id in self.module_env.numpy_names:
                return NUMPY
            return TOP
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node, env)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node, env)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node, env)
        if isinstance(node, ast.UnaryOp):
            op = _AST_UNOPS.get(type(node.op))
            operand = _as_iv(self._eval(node.operand, env))
            return unop(op, operand) if op else TOP
        if isinstance(node, ast.BoolOp):
            result = None
            for value in node.values:
                part = self._eval(value, env)
                result = part if result is None else _join(result, part)
            return result if result is not None else TOP
        if isinstance(node, ast.Compare):
            self._eval(node.left, env)
            for comparator in node.comparators:
                self._eval(comparator, env)
            return BOOL
        if isinstance(node, ast.IfExp):
            self._eval(node.test, env)
            then_env = self._refine(dict(env), node.test, True)
            else_env = self._refine(dict(env), node.test, False)
            return _join(self._eval(node.body, then_env),
                         self._eval(node.orelse, else_env))
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.Tuple):
            return TupleVal([self._eval(e, env) for e in node.elts])
        if isinstance(node, ast.List):
            elem = TOP if not node.elts else None
            for e in node.elts:
                part = _as_iv(self._eval(e, env))
                elem = part if elem is None else elem.join(part)
            return ListVal(Bound(len(node.elts)), elem)
        if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            return self._eval_comprehension(node, env)
        if isinstance(node, ast.NamedExpr):
            value = self._eval(node.value, env)
            self._assign(node.target, value, env, node.value)
            return value
        if isinstance(node, ast.Starred):
            self._eval(node.value, env)
            return TOP
        return TOP

    def _eval_attribute(self, node: ast.Attribute, env: dict):
        base = self._eval(node.value, env)
        attr = node.attr
        if isinstance(base, InstanceVal):
            value = self.attrs.get(attr, TOP)
            if isinstance(value, RegVal):
                return value.invariant
            return value
        if isinstance(base, TableObj):
            if attr == "values":
                return base.values
            if attr == "mask":
                return Interval.of_bound(base.size.add_const(-1))
            if attr == "entries":
                return Interval.of_bound(base.size)
            if attr == "max_value":
                return Interval.of_bound(base.max_value)
            if attr == "threshold":
                return Interval.of_bound(base.threshold)
            if attr == "bits":
                return base.bits
            if attr in ("size_bits", "size_bytes"):
                return Interval(ZERO, None)
            return TOP
        if isinstance(base, HistObj):
            if attr == "value":
                return Interval(ZERO, base.mask)
            if attr == "mask":
                return Interval.of_bound(base.mask)
            if attr == "length":
                return base.length
            return TOP
        if isinstance(base, NumpyMod):
            dtype_range = _NUMPY_DTYPES.get(attr)
            if dtype_range is not None:
                return DtypeVal(Interval.range(*dtype_range))
            return TOP
        return TOP

    def _read_list_elem(self, lst: ListVal) -> Interval:
        if lst.kind in ("counter", "history") and lst.invariant is not None:
            return lst.invariant
        return lst.elem

    def _tuple_rep(self, tup: TupleVal):
        """A representative element for a variable-index tuple access."""
        elems = tup.elems
        first = elems[0]
        if all(e is first for e in elems):
            return first
        if all(isinstance(e, Interval) for e in elems):
            result = elems[0]
            for e in elems[1:]:
                result = result.join(e)
            return result
        if isinstance(first, TableObj) and all(
                isinstance(e, TableObj) and e.size == first.size
                and e.max_value == first.max_value for e in elems):
            return first
        if isinstance(first, ListVal) and all(
                isinstance(e, ListVal) and e.kind == first.kind
                and e.length == first.length for e in elems):
            if first.kind == "state":
                for e in elems[1:]:
                    first.elem = first.elem.join(e.elem)
            return first
        return TOP

    def _eval_subscript(self, node: ast.Subscript, env: dict):
        base = self._eval(node.value, env)
        if isinstance(node.slice, ast.Slice):
            for part in (node.slice.lower, node.slice.upper, node.slice.step):
                if part is not None:
                    self._eval(part, env)
            return TOP
        index = _as_iv(self._eval(node.slice, env))
        if isinstance(base, ListVal):
            self._check_index(base.describe, base.length, index, node)
            return self._read_list_elem(base)
        if isinstance(base, TupleVal):
            count = len(base.elems)
            if (index.is_singleton and index.lo.is_const
                    and -count <= index.lo.off < count):
                return base.elems[index.lo.off]
            self._check_index(base.describe, Bound(count), index, node)
            return self._tuple_rep(base)
        return TOP

    def _pow2_token(self, node: ast.expr, env: dict):
        """``(token, delta)`` such that the expression is ``<token> + delta``."""
        iv = _as_iv(self._eval(node, env))
        if iv.token is not None:
            return iv.token, 0, iv
        if (isinstance(node, ast.BinOp)
                and isinstance(node.op, (ast.Add, ast.Sub))
                and isinstance(node.right, ast.Constant)
                and isinstance(node.right.value, int)):
            inner = _as_iv(self._eval(node.left, env))
            if inner.token is not None:
                delta = node.right.value
                if isinstance(node.op, ast.Sub):
                    delta = -delta
                return inner.token, delta, inner
        return None, 0, iv

    def _pow2_value(self, node: ast.expr, env: dict) -> Interval | None:
        """``2 ** <node>`` as an exact bound, or None when unidentifiable."""
        iv = _as_iv(self._eval(node, env))
        if (iv.is_singleton and iv.lo.is_const
                and 0 <= iv.lo.off <= 256):
            return Interval.const(1 << iv.lo.off)
        token, delta, operand = self._pow2_token(node, env)
        if token is None:
            return None
        registered = self.widths.get(token) if delta == 0 else None
        if registered is not None:
            return Interval.of_bound(registered)
        base = self.widths.get(token)
        if base is not None and base.sym is not None and base.off == 0:
            return Interval.of_bound(Bound(0, base.sym, base.shift + delta))
        label = token[-1] if isinstance(token[-1], str) else str(token[-1])
        min_exp = 0
        if operand.lo is not None and operand.lo.is_const:
            min_exp = max(0, operand.lo.off)
        sym = self._sym(("shl", token), f"2**{label}", min_exp)
        return Interval.of_bound(Bound(0, sym, delta))

    def _eval_binop(self, node: ast.BinOp, env: dict):
        op = _AST_BINOPS.get(type(node.op))
        if op is None:
            return TOP
        if op == "*" and (isinstance(node.left, ast.List)
                          or isinstance(node.right, ast.List)):
            list_node = node.left if isinstance(node.left, ast.List) \
                else node.right
            count_node = node.right if list_node is node.left else node.left
            lst = self._eval(list_node, env)
            count = _as_iv(self._eval(count_node, env))
            if isinstance(lst, ListVal):
                lst.length = count.lo if count.is_singleton else None
                return lst
            return TOP
        if op in ("<<", "**") and isinstance(node.left, ast.Constant):
            base_const = node.left.value
            wanted = 1 if op == "<<" else 2
            if base_const == wanted:
                pow2 = self._pow2_value(node.right, env)
                if pow2 is not None:
                    return pow2
        left_raw = self._eval(node.left, env)
        right_raw = self._eval(node.right, env)
        if _is_ndarray(left_raw) or _is_ndarray(right_raw):
            # numpy operators broadcast elementwise, so the interval
            # algebra applies to the element ranges (e.g. masking an
            # unknown array with ``& mask`` bounds every element).
            parts = []
            length = None
            for raw in (left_raw, right_raw):
                if isinstance(raw, ListVal):
                    parts.append(self._read_list_elem(raw))
                    length = raw.length if length is None else length
                else:
                    parts.append(_as_iv(raw))
            return ListVal(length, binop(op, parts[0], parts[1]),
                           "state", describe="ndarray")
        left = _as_iv(left_raw)
        right = _as_iv(right_raw)
        if op == "**":
            if (left.is_singleton and left.lo.is_const and right.is_singleton
                    and right.lo.is_const and 0 <= right.lo.off <= 64):
                return Interval.const(left.lo.off ** right.lo.off)
            return TOP
        return binop(op, left, right)

    def _eval_comprehension(self, node, env: dict):
        if len(node.generators) != 1:
            return TOP
        gen = node.generators[0]
        iterable = self._eval(gen.iter, env)
        fork = dict(env)
        self._assign(gen.target, self._iter_elem(iterable), fork, None)
        for cond in gen.ifs:
            self._eval(cond, fork)
        elem = _as_iv(self._eval(node.elt, fork))
        if isinstance(node, ast.ListComp) and not gen.ifs:
            length = None
            if isinstance(iterable, ListVal):
                length = iterable.length
            elif isinstance(iterable, TupleVal):
                length = Bound(len(iterable.elems))
            return ListVal(length, elem)
        return TOP

    def _iter_elem(self, iterable):
        if isinstance(iterable, RangeVal):
            return iterable.iv
        if isinstance(iterable, ListVal):
            return self._read_list_elem(iterable)
        if isinstance(iterable, TupleVal):
            return self._tuple_rep(iterable)
        return TOP

    # -- calls -------------------------------------------------------------

    def _eval_args(self, node: ast.Call, env: dict):
        pos = [self._eval(arg, env) for arg in node.args]
        kw = {kword.arg: self._eval(kword.value, env)
              for kword in node.keywords if kword.arg is not None}
        return pos, kw

    def _eval_call(self, node: ast.Call, env: dict):
        func = node.func
        if isinstance(func, ast.Attribute):
            base = self._eval(func.value, env)
            if isinstance(base, InstanceVal):
                target = self.methods.get(func.attr)
                pos, kw = self._eval_args(node, env)
                if target is not None:
                    return self._call_method(target, pos, kw)
                return TOP
            if isinstance(base, TableObj):
                pos, _ = self._eval_args(node, env)
                if func.attr in ("predict", "update", "strengthen") and pos:
                    self._check_index(base.values.describe, base.size,
                                      _as_iv(pos[0]), node.args[0])
                    return BOOL if func.attr == "predict" else TOP
                # reset / check_invariants keep the counter invariant.
                return TOP
            if isinstance(base, HistObj):
                self._eval_args(node, env)
                return TOP  # shift / reset keep the register invariant
            if isinstance(base, ListVal):
                pos, kw = self._eval_args(node, env)
                if func.attr in ("append", "insert", "extend") and pos:
                    base.elem = base.elem.join(_as_iv(pos[-1]))
                    base.length = None
                if func.attr == "tolist":
                    return ListVal(base.length, self._read_list_elem(base))
                if func.attr == "astype" and pos:
                    return self._ndarray(base, pos[0])
                if func.attr == "copy" and _is_ndarray(base):
                    return self._ndarray(base, kw.get("dtype"))
                return TOP
            if isinstance(base, NumpyMod):
                return self._eval_numpy_call(func.attr, node, env)
            if isinstance(base, (TupleVal, RangeVal, RegVal)):
                self._eval_args(node, env)
                return TOP
            canonical = (func.attr if func.attr in _INTRINSICS else None)
            return self._eval_known_call(canonical, node, env)
        if isinstance(func, ast.Name):
            canonical = self.module_env.aliases.get(func.id, func.id)
            return self._eval_known_call(canonical, node, env)
        self._eval_args(node, env)
        return TOP

    def _ndarray(self, source, dtype) -> ListVal:
        """An ndarray built from ``source``, optionally cast to ``dtype``.

        A known integer dtype acts as a width declaration: the cast
        wraps every element into the dtype's representable range, so
        the result's elements are bounded by it even when the source is
        unknown.  A provably narrower source survives the cast
        unchanged, so the tighter of the two ranges is kept.  An
        *unknown* dtype may wrap arbitrarily and widens to ``TOP``.
        """
        length = source.length if isinstance(source, ListVal) else None
        elem = (self._read_list_elem(source)
                if isinstance(source, ListVal) else _as_iv(source))
        if isinstance(dtype, DtypeVal):
            within = (elem.lo is not None and elem.hi is not None
                      and dtype.iv.lo is not None and dtype.iv.hi is not None
                      and bound_le(dtype.iv.lo, elem.lo)
                      and bound_le(elem.hi, dtype.iv.hi))
            if not within:
                elem = dtype.iv
        elif dtype is not None:
            elem = TOP
        return ListVal(length, elem, "state", describe="ndarray")

    def _eval_numpy_call(self, name: str, node: ast.Call, env: dict):
        """Model the numpy constructors and predicates predictors use."""
        pos, kw = self._eval_args(node, env)
        dtype = kw.get("dtype")
        if name in ("asarray", "array", "ascontiguousarray"):
            if dtype is None and len(pos) > 1:
                dtype = pos[1]
            return self._ndarray(pos[0] if pos else TOP, dtype)
        if name in ("zeros", "empty", "ones"):
            fill = Interval.range(0, 1 if name == "ones" else 0)
            result = self._ndarray(fill if name != "empty" else TOP, dtype)
            result.length = None
            return result
        if name == "full" and len(pos) >= 2:
            result = self._ndarray(pos[1], dtype)
            result.length = None
            return result
        if name in ("array_equal", "array_equiv", "any", "all"):
            return BOOL
        if name == "count_nonzero":
            return Interval(ZERO, None)
        return TOP

    def _mask_of(self, width_node: ast.expr, env: dict) -> Interval:
        """``2**width - 1`` (the value range of a width-bit field)."""
        pow2 = self._pow2_value(width_node, env)
        if pow2 is None:
            return Interval(ZERO, None)
        return binop("-", pow2, Interval.const(1))

    def _eval_known_call(self, name: str | None, node: ast.Call, env: dict):
        if name == "CounterTable":
            return self._make_table(node, env)
        if name == "GlobalHistory":
            return self._make_history(node, env)
        if name == "log2_exact" and len(node.args) == 1:
            return self._log2(node.args[0], env)
        if name == "bit_mask" and len(node.args) == 1:
            return self._mask_of(node.args[0], env)
        if name == "is_power_of_two":
            self._eval_args(node, env)
            return BOOL
        if name in ("fold_bits", "reverse_bits") and len(node.args) == 2:
            self._eval(node.args[0], env)
            return Interval(ZERO, self._mask_of(node.args[1], env).hi)
        if name == "rotate_left" and len(node.args) == 3:
            self._eval(node.args[0], env)
            self._eval(node.args[2], env)
            return Interval(ZERO, self._mask_of(node.args[1], env).hi)
        if name == "mix64":
            self._eval_args(node, env)
            return Interval(ZERO, Bound((1 << 64) - 1))
        if name in ("pc_index", "skew_h", "skew_h_inv") \
                and len(node.args) == 2:
            self._eval(node.args[0], env)
            return Interval(ZERO, self._mask_of(node.args[1], env).hi)
        if name in ("fold_history", "gshare_index") and node.args:
            for arg in node.args[:-1]:
                self._eval(arg, env)
            return Interval(ZERO, self._mask_of(node.args[-1], env).hi)
        if name == "len" and len(node.args) == 1:
            value = self._eval(node.args[0], env)
            if isinstance(value, ListVal) and value.length is not None:
                return Interval.of_bound(value.length)
            if isinstance(value, TupleVal):
                return Interval.const(len(value.elems))
            return Interval(ZERO, None)
        if name == "range" and node.args and not node.keywords:
            parts = [_as_iv(self._eval(arg, env)) for arg in node.args]
            if len(parts) == 1:
                lo: Bound | None = ZERO
                hi = parts[0].hi
            else:
                lo = parts[0].lo
                hi = parts[1].hi
            return RangeVal(Interval(lo, None if hi is None
                                     else hi.add_const(-1)))
        if name in ("min", "max") and node.args and not node.keywords:
            parts = [_as_iv(self._eval(arg, env)) for arg in node.args]
            result = parts[0]
            for part in parts[1:]:
                result = (iv_min if name == "min" else iv_max)(result, part)
            return result
        if name == "abs" and len(node.args) == 1:
            value = _as_iv(self._eval(node.args[0], env))
            if value.nonneg:
                return value
            if (value.lo is not None and value.lo.is_const
                    and value.hi is not None and value.hi.is_const):
                return Interval.range(0, max(-value.lo.off, value.hi.off))
            return Interval(ZERO, None)
        if name == "bool":
            self._eval_args(node, env)
            return BOOL
        if name == "int" and len(node.args) == 1:
            return _as_iv(self._eval(node.args[0], env))
        if name == "enumerate" and len(node.args) == 1:
            value = self._eval(node.args[0], env)
            if isinstance(value, ListVal):
                hi = None if value.length is None \
                    else value.length.add_const(-1)
                pair = TupleVal([Interval(ZERO, hi),
                                 self._read_list_elem(value)])
                result = ListVal(value.length, TOP, "state",
                                 describe="enumerate")
                result.elem = pair
                return result
            self._eval_args(node, env)
            return TOP
        if name == "tuple" and len(node.args) == 1:
            arg = node.args[0]
            if (isinstance(arg, ast.GeneratorExp)
                    and len(arg.generators) == 1
                    and not arg.generators[0].ifs):
                gen = arg.generators[0]
                iterable = self._eval(gen.iter, env)
                count = None
                if isinstance(iterable, RangeVal):
                    iv = iterable.iv
                    if (iv.lo is not None and iv.lo.is_const
                            and iv.hi is not None and iv.hi.is_const):
                        count = iv.hi.off - iv.lo.off + 1
                if count is not None and 0 < count <= 16:
                    fork = dict(env)
                    self._assign(gen.target, self._iter_elem(iterable),
                                 fork, None)
                    elem = self._eval(arg.elt, fork)
                    return TupleVal([elem] * count)
            inner = self._eval(arg, env)
            if isinstance(inner, TupleVal):
                return inner
            return TOP
        self._eval_args(node, env)
        return TOP

    def _log2(self, arg: ast.expr, env: dict) -> Interval:
        iv = _as_iv(self._eval(arg, env))
        if iv.is_singleton:
            b = iv.lo
            if b.is_const:
                if b.off >= 1 and b.off & (b.off - 1) == 0:
                    return Interval.const(b.off.bit_length() - 1)
                return Interval(ZERO, None)
            if b.off == 0:
                token = ("width", b.sym.key, b.shift)
                self.widths[token] = b
                return Interval(Bound(b.sym.min_exp + b.shift), None, token)
        return Interval(ZERO, None)

    def _ctor_size(self, node: ast.Call, size_node: ast.expr,
                   env: dict) -> Bound:
        """The exact power-of-two size bound of a table constructor,
        refining a plain-name argument in place (the constructor raises
        on non-power-of-two sizes, so code after the call may rely on
        it — including validation hoisted into a loop over several
        sizes, where the loop variable, not the name, was refined)."""
        iv = _as_iv(self._eval(size_node, env))
        if iv.is_singleton and iv.lo.off == 0 and iv.lo.sym is not None:
            return iv.lo
        if (iv.is_singleton and iv.lo.is_const and iv.lo.off >= 1
                and iv.lo.off & (iv.lo.off - 1) == 0):
            return iv.lo
        token = iv.token
        if token is not None:
            label = token[-1] if isinstance(token[-1], str) else "size"
            sym = self._sym(("pow2", token), label)
        else:
            sym = self._sym(("ctor", node.lineno, node.col_offset),
                            f"size@L{node.lineno}")
        if iv.lo is not None and iv.lo.is_const and iv.lo.off >= 1:
            sym.require_min_exp((iv.lo.off - 1).bit_length())
        bound = Bound(0, sym, 0)
        if isinstance(size_node, ast.Name) and size_node.id in env:
            env[size_node.id] = Interval.of_bound(bound).with_token(token)
        return bound

    def _find_arg(self, node: ast.Call, position: int, keyword: str):
        if len(node.args) > position:
            return node.args[position]
        for kword in node.keywords:
            if kword.arg == keyword:
                return kword.value
        return None

    def _make_table(self, node: ast.Call, env: dict):
        size_node = self._find_arg(node, 0, "entries")
        if size_node is None:
            return TOP
        size = self._ctor_size(node, size_node, env)
        bits_node = self._find_arg(node, 1, "bits")
        bits_text = "2" if bits_node is None else ast.unparse(bits_node)
        if bits_node is None:
            bits = Interval.const(2)
        else:
            bits = _as_iv(self._eval(bits_node, env))
        if bits.is_singleton and bits.lo.is_const:
            width = max(1, bits.lo.off)
            max_value = Bound((1 << width) - 1)
            threshold = Bound(1 << (width - 1))
            bits = Interval.const(width)
        else:
            # Constructor postcondition: bits >= 1, so the ceiling
            # 2**bits - 1 and threshold 2**(bits - 1) both exist.
            bits = bits.clamp_lo(ONE)
            if isinstance(bits_node, ast.Name) and bits_node.id in env:
                env[bits_node.id] = bits
            pow2 = self._pow2_value(bits_node, env) if bits_node is not None \
                else None
            if pow2 is not None and pow2.is_singleton \
                    and pow2.lo.sym is not None:
                pow2.lo.sym.require_min_exp(1)
                max_value = pow2.lo.add_const(-1)
                threshold = Bound(0, pow2.lo.sym, pow2.lo.shift - 1)
            else:
                sym = self._sym(("bits", node.lineno, node.col_offset),
                                f"2**bits@L{node.lineno}", 1)
                max_value = Bound(-1, sym, 0)
                threshold = Bound(0, sym, -1)
        initial_node = self._find_arg(node, 2, "initial")
        if initial_node is not None:
            self._eval(initial_node, env)
        return TableObj(size, max_value, threshold, bits, bits_text,
                        f"table@L{node.lineno}")

    def _make_history(self, node: ast.Call, env: dict):
        arg = self._find_arg(node, 0, "length")
        if arg is None:
            return TOP
        width_text = ast.unparse(arg)
        length = _as_iv(self._eval(arg, env)).clamp_lo(ZERO)
        pow2 = self._pow2_value(arg, env)
        if pow2 is not None and pow2.is_singleton:
            mask = pow2.lo.add_const(-1)
        else:
            sym = self._sym(("ctor", node.lineno, node.col_offset),
                            f"2**len@L{node.lineno}")
            mask = Bound(-1, sym, 0)
        return HistObj(mask, length, width_text, f"hist@L{node.lineno}")

    # -- branch refinement -------------------------------------------------

    def _refine(self, env: dict, test: ast.expr, sense: bool) -> dict:
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            return self._refine(env, test.operand, not sense)
        if isinstance(test, ast.BoolOp):
            conjunctive = (isinstance(test.op, ast.And) and sense) or (
                isinstance(test.op, ast.Or) and not sense)
            if conjunctive:
                for value in test.values:
                    self._refine(env, value, sense)
            return env
        if isinstance(test, ast.Call):
            self._refine_pow2_guard(env, test, sense)
            return env
        if isinstance(test, ast.Compare):
            operands = [test.left] + test.comparators
            ops = [_CMP_OPS.get(type(op)) for op in test.ops]
            if len(ops) > 1 and not sense:
                return env  # negated conjunction: no single-branch fact
            for left, op, right in zip(operands, ops, operands[1:]):
                if op is None:
                    continue
                effective = op if sense else _NEGATED_CMP[op]
                self._refine_cmp(env, left, effective, right)
            return env
        return env

    def _refine_pow2_guard(self, env: dict, test: ast.Call,
                           sense: bool) -> None:
        func = test.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else "")
        canonical = self.module_env.aliases.get(name, name)
        if canonical != "is_power_of_two" or not sense or len(test.args) != 1:
            return
        arg = test.args[0]
        if not isinstance(arg, ast.Name):
            return
        current = env.get(arg.id)
        if not isinstance(current, Interval):
            return
        if is_exact_pow2(current):
            return
        token = current.token or (self.method, arg.id)
        label = token[-1] if isinstance(token[-1], str) else arg.id
        sym = self._sym(("pow2", token), label)
        if current.lo is not None and current.lo.is_const \
                and current.lo.off >= 1:
            sym.require_min_exp((current.lo.off - 1).bit_length())
        env[arg.id] = Interval.of_bound(Bound(0, sym, 0)).with_token(token)

    def _refine_cmp(self, env: dict, left: ast.expr, op: str,
                    right: ast.expr) -> None:
        if isinstance(left, ast.Name) and isinstance(env.get(left.id),
                                                     Interval):
            other = _as_iv(self._eval(right, env))
            env[left.id] = self._apply_cmp(env[left.id], op, other)
        if isinstance(right, ast.Name) and isinstance(env.get(right.id),
                                                      Interval):
            other = _as_iv(self._eval(left, env))
            env[right.id] = self._apply_cmp(env[right.id],
                                            _MIRRORED_CMP[op], other)

    @staticmethod
    def _apply_cmp(iv: Interval, op: str, other: Interval) -> Interval:
        if op == "<" and other.hi is not None:
            return iv.clamp_hi(other.hi.add_const(-1))
        if op == "<=" and other.hi is not None:
            return iv.clamp_hi(other.hi)
        if op == ">" and other.lo is not None:
            return iv.clamp_lo(other.lo.add_const(1))
        if op == ">=" and other.lo is not None:
            return iv.clamp_lo(other.lo)
        if op == "==":
            if other.lo is not None:
                iv = iv.clamp_lo(other.lo)
            if other.hi is not None:
                iv = iv.clamp_hi(other.hi)
            return iv
        return iv

    # -- _WIDTHS declaration honesty --------------------------------------

    def _check_declarations(self) -> None:
        discovered: dict[str, tuple[str, str]] = {}
        for name in sorted(self.attrs):
            value = self.attrs[name]
            if isinstance(value, TableObj):
                discovered[name] = ("WID002", value.bits_text)
            elif isinstance(value, HistObj):
                discovered[name] = ("WID003", value.width_text)
            elif isinstance(value, TupleVal):
                rep = self._tuple_rep(value)
                if isinstance(rep, TableObj):
                    discovered[name] = ("WID002", rep.bits_text)
        anchor = self.declared_node or self.cls
        for name, (rule_id, text) in sorted(discovered.items()):
            kind = "counter table" if rule_id == "WID002" \
                else "history register"
            if name not in self.declared:
                self._report(
                    rule_id, self.cls,
                    f"{self.cls.name}.{name} holds a {kind} of width "
                    f"'{text}' but {_WIDTHS_ATTR} does not declare it",
                )
            elif self.declared[name] != text:
                self._report(
                    rule_id, anchor,
                    f"{_WIDTHS_ATTR}[{name!r}] declares width "
                    f"'{self.declared[name]}' but {self.cls.name}.{name} "
                    f"is constructed with width '{text}'",
                )
        for name in sorted(self.declared):
            if name in discovered:
                continue
            value = self.attrs.get(name)
            promoted = isinstance(value, RegVal) or (
                isinstance(value, ListVal)
                and value.kind in ("counter", "history"))
            if not promoted:
                self._report(
                    "WID002", anchor,
                    f"stale {_WIDTHS_ATTR} entry: {self.cls.name}.{name} "
                    "is not a counter table, history register, or "
                    "declared-width list",
                )


# --------------------------------------------------------------------------
# Project-level driver shared by WID001/WID002/WID003.


def _should_analyze(cls_node: ast.ClassDef) -> bool:
    if _PREDICTOR_BASE in _base_names(cls_node):
        return True
    return _widths_decl(cls_node)[1] is not None


def _project_results(project: "ProjectContext") -> list[tuple]:
    """``(rule_id, display_path, line, col, message)`` for all classes.

    Computed once per lint invocation and memoized on the project
    context; the three WID project rules each filter their own id out.
    """
    cached = getattr(project, "_wid_results", None)
    if cached is not None:
        return cached
    consts = _project_consts(project)
    results: list[tuple] = []
    for ctx in project.files:
        classes = [stmt for stmt in ctx.tree.body
                   if isinstance(stmt, ast.ClassDef)
                   and _should_analyze(stmt)]
        if not classes:
            continue
        module_env = _ModuleEnv(ctx, consts)
        for cls_node in classes:
            analysis = _ClassAnalysis(cls_node, module_env)
            try:
                analysis.run()
            except RecursionError:  # pragma: no cover - defensive
                continue
            for rule_id, line, col, message in sorted(analysis.findings):
                results.append((rule_id, ctx.display, line, col, message))
    project._wid_results = results
    return results


class _WidthRule(ProjectRule):
    """Shared plumbing: filter the memoized analysis by rule id."""

    anchor = _ANCHOR

    def check_project(self, anchor_ctx: "FileContext",
                      project: "ProjectContext"):
        for rule_id, path, line, col, message in _project_results(project):
            if rule_id == self.rule_id:
                yield Finding(path=path, line=line, col=col,
                              rule=rule_id, severity=self.severity,
                              message=message)


@register
class IndexBoundsRule(_WidthRule):
    """Every table subscript must be provably within the table.

    An index hash that escapes ``[0, table_size)`` does not crash the
    simulation — Python lists happily wrap negative indices — it
    silently trains the wrong counter, corrupting MISP/KI in a way
    tier-1 tests catch only probabilistically.  The abstract
    interpreter proves every subscript of a counter table, tag list, or
    bank tuple stays inside the table the constructor declared.
    """

    rule_id = "WID001"
    severity = Severity.ERROR
    summary = "table indices are provably within [0, table_size)"
    example_bad = (
        "index = (address >> 2) ^ self.history.value\n"
        "self.table.values[index] += 1   # unmasked: can exceed the table"
    )
    example_good = (
        "index = ((address >> 2) ^ self.history.value) & self._index_mask\n"
        "self.table.values[index] += 1   # provably in [0, entries)"
    )


@register
class CounterSaturationRule(_WidthRule):
    """Counter stores must provably stay within the declared width.

    Saturating arithmetic is the contract of every counter file; an
    unguarded ``value + 1`` lets a 2-bit counter count to 4, and the
    MSB-threshold prediction test silently changes meaning.  The
    checker *verifies* the saturation guards instead of assuming them,
    and enforces ``_WIDTHS`` declarations both ways.

    numpy policy: an integer dtype *is* a width declaration.  Casting
    wraps every element into the dtype's representable range, so an
    array built with ``numpy.asarray(..., dtype=numpy.uint8)`` (or
    ``.astype``) provably holds values in ``[0, 255]``, and masking an
    unknown array with ``array & mask`` bounds it like the scalar
    masking idiom.  Array-backed counter state therefore satisfies
    WID001-WID003 structurally — it is never baselined — as long as
    each store back into a ``_WIDTHS``-declared attribute goes through
    a dtype, a mask, or a checked import (``CounterTable.import_array``
    rejects out-of-range states instead of wrapping them).
    """

    rule_id = "WID002"
    severity = Severity.ERROR
    summary = "counter updates provably saturate at the declared width"
    example_bad = (
        "value = self.table.values[index]\n"
        "self.table.values[index] = value + 1   # no saturation guard\n"
        "\n"
        "self.values = array.tolist()   # unbounded ndarray adopted raw"
    )
    example_good = (
        "value = self.table.values[index]\n"
        "if value < self._max_value:\n"
        "    self.table.values[index] = value + 1\n"
        "\n"
        "self.values = (array & self.max_value).tolist()   # dtype/mask\n"
        "# bounds every element; import_array() checks before adopting"
    )


@register
class HistoryWidthRule(_WidthRule):
    """History shift-ins must be masked back to the declared width.

    A shift register that is never masked grows without bound; every
    index derived from it changes distribution and the predictor
    quietly stops matching the hardware it models.  Stores to
    ``GlobalHistory.value`` and to ``_WIDTHS``-declared history lists
    and scalars must provably fit ``[0, 2**length - 1]``.
    """

    rule_id = "WID003"
    severity = Severity.ERROR
    summary = "history shift-ins are masked to the declared width"
    example_bad = (
        "h = self.history\n"
        "h.value = (h.value << 1) | taken   # unbounded register growth"
    )
    example_good = (
        "h = self.history\n"
        "h.value = ((h.value << 1) | taken) & h.mask"
    )


@register
class ProvablePow2ModuloRule(FileRule):
    """``%`` by a provably power-of-two value should be an AND mask.

    BIT001 catches ``x % 64``; this rule follows reaching definitions
    through the interval domain to catch ``x % size`` where ``size`` is
    provably ``1 << n`` — the same off-by-one hazard the seed's
    modulo-mask bug came from, plus a real cost in hot loops (CPython
    ``%`` is slower than ``&``).
    """

    rule_id = "WID004"
    severity = Severity.WARNING
    summary = "modulo by a provable power of two should be a mask"
    example_bad = (
        "size = 1 << width\n"
        "index = hash_value % size"
    )
    example_good = (
        "size = 1 << width\n"
        "index = hash_value & (size - 1)"
    )

    def applies(self, ctx: "FileContext") -> bool:
        # utils.bits is the one place allowed to spell out bit math.
        return not ctx.matches("utils/bits.py")

    def check(self, ctx: "FileContext"):
        module_assigns = {
            target.id: stmt.value
            for stmt in ctx.tree.body if isinstance(stmt, ast.Assign)
            for target in stmt.targets if isinstance(target, ast.Name)
        }
        for scope in self._scopes(ctx.tree):
            defs = ReachingDefinitions(scope)
            for node in self._own_nodes(scope):
                if not (isinstance(node, ast.BinOp)
                        and isinstance(node.op, ast.Mod)):
                    continue
                right = node.right
                if isinstance(right, ast.Constant):
                    continue  # literal modulus: BIT001's domain
                if _is_power_of_two_expr(right):
                    continue  # literal power-of-two shape: BIT001 again
                iv = definition_range(right, defs, module_assigns)
                if is_exact_pow2(iv):
                    yield self.finding(
                        ctx, node,
                        f"'% {ast.unparse(right)}' has a provably "
                        "power-of-two modulus: use "
                        f"'& ({ast.unparse(right)} - 1)' or "
                        "utils.bits.bit_mask instead",
                    )

    @staticmethod
    def _scopes(tree: ast.AST):
        yield tree
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    @staticmethod
    def _own_nodes(scope: ast.AST):
        """Walk a scope without descending into nested functions."""
        stack = list(ast.iter_child_nodes(scope)) if not isinstance(
            scope, ast.Module) else list(scope.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(node))
            yield node
