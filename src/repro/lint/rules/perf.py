"""PERF001-PERF004: scalar code on trace-scale hot paths.

BENCH_kernels.json puts the fast kernels at ~10M branches/s and the
end-to-end experiments at ~1M: per-branch Python around the kernels is
the bottleneck.  These rules make that gap a machine-checked worklist.
All four run on the hot region inferred by :mod:`repro.lint.hotpath` —
code reachable from the simulator entry points, the kernels dispatch
table, the profiling passes, and ``@hot_path`` annotations — so a
scalar loop in a cold report formatter never fires.

* **PERF001** — a per-element Python loop whose trip count is provably
  trace-scale.  When an array-backed sibling (``<name>_array``/
  ``<name>_fast`` or a registered kernel) exists, the finding says so.
* **PERF002** — ``list.append`` accumulation (direct or via a bound-
  method alias) inside a trace-scale loop where the accumulator starts
  as an empty list: the final length is the trace length, so a
  preallocated ndarray is provable.
* **PERF003** — numpy anti-patterns in hot code: ``np.append``/
  ``np.concatenate`` (O(n) reallocation) inside any loop, per-element
  ``math.*`` calls inside a trace-scale loop, and binary operations
  that upcast an integer-dtype array (the declared widths of
  :mod:`repro.lint.rules.widths`) to float.
* **PERF004** — a ``simulate_*`` kernel defined under ``kernels/`` that
  the ``_KERNELS`` dispatch table never selects: a registered fast
  sibling hot callers silently cannot reach.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.dataflow import ReachingDefinitions
from repro.lint.findings import Finding, Severity
from repro.lint.hotpath import (
    KERNEL_TABLE_NAME,
    KERNELS_SUFFIX,
    HotFunction,
    HotRegion,
    _resolve_function_ref,
    hot_region,
)
from repro.lint.rules import ProjectRule, register
from repro.lint.rules.widths import _NUMPY_DTYPES

__all__ = [
    "TraceScaleLoopRule",
    "HotListAppendRule",
    "NumpyAntiPatternRule",
    "UnregisteredKernelRule",
]

#: The anchor: PERF rules run whenever the simulator driver is linted.
SIMULATOR_SUFFIX = "core/simulator.py"

_INT_DTYPES = frozenset(
    name for name in _NUMPY_DTYPES if name.startswith(("int", "uint"))
)

#: numpy calls that reallocate the whole array per call.
_REALLOC_CALLS = ("append", "concatenate", "hstack", "vstack")


class _HotRegionRule(ProjectRule):
    """Shared plumbing: anchor gating and region construction.

    ``anchor`` and ``extra_roots`` are constructor arguments so tests
    can aim a rule at fixture trees with synthetic entry points.
    """

    def __init__(self, anchor: str = SIMULATOR_SUFFIX,
                 extra_roots: tuple[str, ...] = ()):
        self.anchor = anchor
        self._extra_roots = extra_roots

    def check_project(self, anchor_ctx, project) -> Iterator[Finding]:
        region = hot_region(project, self._extra_roots)
        for fn in region.members():
            yield from self._check_hot_function(region, fn)

    def _check_hot_function(self, region: HotRegion,
                            fn: HotFunction) -> Iterator[Finding]:
        raise NotImplementedError


def _numpy_aliases(module) -> frozenset[str]:
    """Local names bound to the numpy module (``import numpy as np``)."""
    if module is None:
        return frozenset()
    return frozenset(
        local for local, target in module.imports.items()
        if target == "numpy" or target.startswith("numpy.")
    )


def _walk_own(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a subtree without descending into nested function scopes."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda)):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def _is_empty_list_expr(expr: ast.expr | None) -> bool:
    if isinstance(expr, ast.List) and not expr.elts:
        return True
    return (isinstance(expr, ast.Call) and not expr.args
            and isinstance(expr.func, ast.Name) and expr.func.id == "list")


@register
class TraceScaleLoopRule(_HotRegionRule):
    """PERF001: no per-element Python loop over trace-scale data.

    A loop that provably iterates once per branch record costs
    interpreter dispatch per branch — the exact overhead the array
    kernels exist to remove.  Replace it with a whole-column numpy pass,
    or route through the kernels dispatch when a fast sibling already
    exists.  Loops over table-sized or unproven data are not flagged.
    """

    rule_id = "PERF001"
    severity = Severity.ERROR
    summary = "no per-element Python loops over trace-scale data on hot paths"
    example_bad = (
        "for i in range(len(trace.addresses)):   # once per branch\n"
        "    counts[trace.addresses[i]] += 1"
    )
    example_good = (
        "addresses, _ = trace.arrays()\n"
        "uniq, counts = numpy.unique(addresses, return_counts=True)"
    )

    def _check_hot_function(self, region, fn) -> Iterator[Finding]:
        sibling = self._array_sibling(region, fn)
        for loop in fn.trace_loops():
            message = (
                f"{fn.qualname} runs a per-element Python loop over "
                f"trace-scale data ({loop.reason}); hoist it into a "
                "whole-column array pass"
            )
            if sibling is not None:
                message += f" (array-backed sibling exists: {sibling})"
            yield self.finding(fn.info.ctx, loop.node, message)

    @staticmethod
    def _array_sibling(region: HotRegion, fn: HotFunction) -> str | None:
        base = fn.info.name.lstrip("_")
        for candidate in (f"{base}_array", f"{base}_fast",
                          f"simulate_{base}"):
            named = region.graph.functions_named(candidate)
            if named:
                return named[0].qualname
        return None


@register
class HotListAppendRule(_HotRegionRule):
    """PERF002: no list.append accumulation on a trace-scale hot path.

    An accumulator that starts as ``[]`` and gains one element per
    branch ends at trace length — a length known before the loop runs,
    so a preallocated ndarray (filled by index, or produced by a
    vectorized expression) is provable.  ``list.append`` pays interpreter
    dispatch and amortized reallocation per branch instead.  Both the
    direct ``xs.append(v)`` shape and the bound-method alias
    (``push = xs.append; push(v)``) are caught; one finding is emitted
    per accumulator per function.
    """

    rule_id = "PERF002"
    severity = Severity.ERROR
    summary = "hot-path accumulators preallocate arrays instead of append"
    example_bad = (
        "outcomes = []\n"
        "while count < n_branches:\n"
        "    outcomes.append(behavior.outcome())"
    )
    example_good = (
        "outcomes = numpy.empty(n_branches, dtype=numpy.bool_)\n"
        "outcomes[:] = behavior.outcomes(n_branches)"
    )

    def _check_hot_function(self, region, fn) -> Iterator[Finding]:
        loops = fn.trace_loops()
        if not loops:
            return
        defs = ReachingDefinitions(fn.info.node)
        seen: set[str] = set()
        for loop in loops:
            for node in _walk_own(loop.node):
                if not isinstance(node, ast.Call):
                    continue
                accumulator = self._append_receiver(node, defs,
                                                    loop.node.lineno)
                if accumulator is None or accumulator in seen:
                    continue
                seen.add(accumulator)
                yield self.finding(
                    fn.info.ctx, node,
                    f"{fn.qualname} grows list {accumulator!r} once per "
                    "branch; the final length is the trace length, so "
                    "preallocate an ndarray (or emit the column with a "
                    "vectorized expression) instead of append",
                )

    def _append_receiver(self, call: ast.Call, defs: ReachingDefinitions,
                         loop_line: int) -> str | None:
        """The empty-list accumulator a call appends to, if provable.

        The accumulator must be bound to ``[]`` *before* the loop
        header: a scratch list reset inside the loop body never reaches
        trace length, so it is not an accumulation.
        """
        func = call.func
        if (isinstance(func, ast.Attribute) and func.attr == "append"
                and isinstance(func.value, ast.Name)):
            if self._is_empty_list_local(func.value.id, defs, loop_line):
                return func.value.id
            return None
        if isinstance(func, ast.Name):
            # A bound-method alias: push = xs.append
            for definition in defs.definitions(func.id, call.lineno):
                value = definition.value
                if (value is not None and isinstance(value, ast.Attribute)
                        and value.attr == "append"
                        and isinstance(value.value, ast.Name)
                        and self._is_empty_list_local(
                            value.value.id, defs, loop_line)):
                    return value.value.id
        return None

    @staticmethod
    def _is_empty_list_local(name: str, defs: ReachingDefinitions,
                             loop_line: int) -> bool:
        """Whether ``name`` is bound to an empty list before the loop."""
        if not defs.is_local(name):
            return False
        bindings = [d for d in defs.definitions(name, loop_line)
                    if d.line < loop_line]
        direct = [d for d in bindings if not d.indirect]
        return bool(direct) and all(
            _is_empty_list_expr(d.value) for d in direct
        )


@register
class NumpyAntiPatternRule(_HotRegionRule):
    """PERF003: no quadratic or upcasting numpy use in hot code.

    Three shapes, all of which silently turn an O(n) pass into O(n^2)
    work or double its memory traffic:

    * ``np.append``/``np.concatenate``/``np.hstack``/``np.vstack``
      inside *any* loop — each call copies the whole array, so growing
      one element at a time is quadratic; collect and concatenate once.
    * a ``math.*`` call inside a trace-scale loop — ``math.log`` on one
      float per branch is interpreter dispatch; ``numpy.log`` over the
      whole column is one vectorized pass.
    * a binary operation combining an array created with a declared
      integer dtype (the ``_WIDTHS`` model) with a float — the result
      upcasts to float64, doubling memory traffic and breaking the
      declared-width contract downstream.
    """

    rule_id = "PERF003"
    severity = Severity.ERROR
    summary = "no array-reallocating, upcasting, or scalar-math numpy use"
    example_bad = (
        "for chunk in chunks:\n"
        "    totals = np.append(totals, chunk)   # copies totals each time"
    )
    example_good = "totals = np.concatenate(list(chunks))   # one copy"

    def _check_hot_function(self, region, fn) -> Iterator[Finding]:
        module = region.graph.table.modules.get(fn.info.module)
        numpy_names = _numpy_aliases(module)
        defs = ReachingDefinitions(fn.info.node)
        yield from self._check_realloc_in_loops(fn, numpy_names)
        yield from self._check_scalar_math(fn, defs)
        yield from self._check_upcasts(fn, defs, numpy_names)

    # -- np.append / np.concatenate inside a loop ------------------------

    def _check_realloc_in_loops(self, fn: HotFunction,
                                numpy_names: frozenset[str]
                                ) -> Iterator[Finding]:
        for loop in fn.loops:
            for node in _walk_own(loop.node):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in _REALLOC_CALLS
                        and isinstance(node.func.value, ast.Name)
                        and node.func.value.id in numpy_names):
                    yield self.finding(
                        fn.info.ctx, node,
                        f"{fn.qualname} calls "
                        f"{node.func.value.id}.{node.func.attr} inside a "
                        "loop; every call copies the whole array, making "
                        "the loop quadratic — accumulate in a list and "
                        "concatenate once, or preallocate",
                    )

    # -- math.* per element ----------------------------------------------

    def _check_scalar_math(self, fn: HotFunction,
                           defs: ReachingDefinitions) -> Iterator[Finding]:
        seen: set[str] = set()
        for loop in fn.trace_loops():
            for node in _walk_own(loop.node):
                if not isinstance(node, ast.Call):
                    continue
                dotted = self._math_callee(node, defs)
                if dotted is None or dotted in seen:
                    continue
                seen.add(dotted)
                yield self.finding(
                    fn.info.ctx, node,
                    f"{fn.qualname} calls {dotted} once per branch; "
                    f"apply numpy.{dotted.split('.')[-1]} to the whole "
                    "column in one vectorized pass instead",
                )

    @staticmethod
    def _math_callee(call: ast.Call,
                     defs: ReachingDefinitions) -> str | None:
        func = call.func
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "math"):
            return f"math.{func.attr}"
        if isinstance(func, ast.Name) and defs.is_local(func.id):
            # An alias hoisted for speed: log = math.log
            for definition in defs.definitions(func.id, call.lineno):
                value = definition.value
                if (value is not None and isinstance(value, ast.Attribute)
                        and isinstance(value.value, ast.Name)
                        and value.value.id == "math"):
                    return f"math.{value.attr}"
        return None

    # -- integer-array upcasts -------------------------------------------

    def _check_upcasts(self, fn: HotFunction, defs: ReachingDefinitions,
                       numpy_names: frozenset[str]) -> Iterator[Finding]:
        for node in _walk_own(fn.info.node):
            if not isinstance(node, ast.BinOp):
                continue
            for array_side, other in ((node.left, node.right),
                                      (node.right, node.left)):
                dtype = self._declared_int_dtype(array_side, defs)
                if dtype is None:
                    continue
                if isinstance(node.op, ast.Div):
                    why = "true division always produces float64"
                elif (isinstance(other, ast.Constant)
                      and isinstance(other.value, float)):
                    why = f"mixing with float literal {other.value!r}"
                else:
                    continue
                yield self.finding(
                    fn.info.ctx, node,
                    f"{fn.qualname} upcasts a declared {dtype} array to "
                    f"float ({why}); keep hot-path arrays at their "
                    "declared width (use // or an integer operand, or "
                    "convert once outside the hot path)",
                )
                break

    @staticmethod
    def _declared_int_dtype(expr: ast.expr,
                            defs: ReachingDefinitions) -> str | None:
        """The declared integer dtype of a name bound to a numpy array."""
        if not (isinstance(expr, ast.Name) and defs.is_local(expr.id)):
            return None
        for definition in defs.definitions(expr.id, expr.lineno):
            value = definition.value
            if not isinstance(value, ast.Call):
                continue
            for keyword in value.keywords:
                if keyword.arg != "dtype":
                    continue
                dtype = keyword.value
                name = (dtype.attr if isinstance(dtype, ast.Attribute)
                        else dtype.id if isinstance(dtype, ast.Name)
                        else None)
                if name in _INT_DTYPES:
                    return name
        return None


@register
class UnregisteredKernelRule(ProjectRule):
    """PERF004: every public kernel is selectable from the dispatch table.

    The kernels package promises ``simulate(..., kernel="auto")`` uses
    the fastest registered implementation.  A ``simulate_*`` function
    defined under ``kernels/`` that the ``_KERNELS`` table neither maps
    to nor reaches is a fast sibling hot callers silently cannot use —
    they fall back to the reference loop and the bench gap reopens.
    """

    rule_id = "PERF004"
    severity = Severity.ERROR
    summary = "kernels/ simulate_* functions are reachable from _KERNELS"
    anchor = KERNELS_SUFFIX
    example_bad = (
        "# kernels/local.py defines simulate_local, but kernels/__init__\n"
        "_KERNELS = {BimodalPredictor: dynamic.simulate_bimodal}"
    )
    example_good = (
        "_KERNELS = {BimodalPredictor: dynamic.simulate_bimodal,\n"
        "            LocalPredictor: local.simulate_local}"
    )

    def __init__(self, anchor: str = KERNELS_SUFFIX,
                 table_name: str = KERNEL_TABLE_NAME):
        self.anchor = anchor
        self._table_name = table_name

    def check_project(self, anchor_ctx, project) -> Iterator[Finding]:
        from repro.lint.graph import CallGraph

        graph = CallGraph.build(project)
        registered = self._registered(graph, anchor_ctx)
        reachable = {fn.qualname for fn in graph.reachable_from(registered)}
        kernels_dir = anchor_ctx.path.as_posix().rsplit("/", 1)[0] + "/"
        for qualname in sorted(graph.functions):
            fn = graph.functions[qualname]
            if (fn.name.startswith("simulate_") and fn.cls is None
                    and fn.ctx.path.as_posix().startswith(kernels_dir)
                    and "<locals>" not in qualname
                    and qualname not in reachable):
                yield self.finding(
                    fn.ctx, fn.node,
                    f"fast kernel {qualname} is not selectable from the "
                    f"{self._table_name} dispatch table in "
                    f"{anchor_ctx.display}; hot callers fall back to the "
                    "reference loop — register it (or rename it if it is "
                    "not a kernel entry point)",
                )

    def _registered(self, graph, anchor_ctx) -> list[str]:
        for module in graph.table.modules.values():
            if module.ctx is anchor_ctx:
                value = module.assigns.get(self._table_name)
                if isinstance(value, ast.Dict):
                    return sorted(
                        fn.qualname for fn in (
                            _resolve_function_ref(graph.table, module, entry)
                            for entry in value.values
                        ) if fn is not None
                    )
        return []
