"""KEY001/KEY002, ENV001, ATM001/ATM002: result provenance.

The content-addressed result cache is only sound if three disciplines
hold everywhere at once:

* **key completeness** — every input that can change a simulated result
  (a :class:`~repro.runner.cells.Cell` field, an ``ExperimentContext``
  knob, a :class:`~repro.traces.spec.TraceSpec` recipe field) flows
  into the canonical-JSON cache key, or carries an audited exemption
  declaring why it cannot change results (KEY001), and the key itself
  serializes canonically — sorted, ordered, machine-independent
  (KEY002);
* **env-knob inventory** — environment variables are configuration
  inputs too, so every read goes through the typed accessors of
  :mod:`repro.utils.env` and is declared in the ``ENV_KNOBS`` registry
  of :mod:`repro.experiments.common`; an inline ``os.environ`` read is
  an input the inventory (and therefore KEY001's reasoning) cannot see
  (ENV001);
* **atomic artifacts** — cache entries, trace manifests, and bench
  snapshots become visible only via the ``mkstemp`` + ``os.replace``
  seam of :mod:`repro.utils.io`, with no bare write-mode ``open`` and
  no exists-then-write races in store modules (ATM001/ATM002).

These are the software form of the paper's aliasing problem: two
*different* configurations mapping to the *same* cache entry is
destructive aliasing between experiments, and it corrupts every
downstream table silently.  KEY001 is the constructive proof that it
cannot happen.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.graph import CallGraph, _dotted
from repro.lint.provenance import (
    accessor_calls,
    attribute_reads,
    dataclass_fields,
    exists_guarded_writes,
    find_class,
    init_knobs,
    inline_env_reads,
    literal_str_dict,
    method_closure,
    module_for,
    non_self_params,
    raw_write_calls,
    resolve_str_constant,
)
from repro.lint.rules import FileRule, ProjectRule, register

__all__ = [
    "CacheKeyCompletenessRule",
    "CacheKeyCanonicalizationRule",
    "EnvKnobContractRule",
    "AtomicWriteSeamRule",
    "ExistsThenWriteRule",
]

#: KEY001/KEY002 anchors: the cell declaration and the key hasher.
CELLS_SUFFIX = "runner/cells.py"
CACHE_SUFFIX = "runner/cache.py"
#: ENV001 anchor: where the ``ENV_KNOBS`` registry is declared.
COMMON_SUFFIX = "experiments/common.py"
#: Path fragments identifying artifact-store modules (ATM scope).  The
#: service layer is in scope too: its latency reports and drained
#: counters are durable artifacts with concurrent readers (CI tails the
#: report while loadgen writes it), so they get the same torn-file
#: guarantees as cache entries and bench snapshots.
STORE_FRAGMENTS = ("/runner/", "/traces/", "/bench/", "/service/")
#: The one module allowed to perform raw writes (the seam itself).
IO_SEAM_SUFFIX = "utils/io.py"
#: The one module allowed to read ``os.environ`` (the accessor seam).
ENV_SEAM_SUFFIX = "utils/env.py"


@register
class CacheKeyCompletenessRule(ProjectRule):
    """KEY001: every result-influencing input reaches the cache key.

    The rule extracts three declaration sets from the linted tree — the
    ``Cell`` dataclass fields, the public ``self.<knob>`` bindings of
    ``ExperimentContext.__init__``, and the ``_KEY_EXEMPT`` contract
    dict — then computes two read sets: the *key path* (every attribute
    read in ``key_fields`` and the same-class helpers it calls) and the
    *execution region* (every attribute read in code reachable from
    ``execute_cell`` on the call graph).  A Cell field must be read on
    the key path or be exempt; a context knob read in the execution
    region must be read on the key path or be exempt; an exemption must
    name a real, un-keyed input (a keyed exemption is stale, an unknown
    one a typo).  ``TraceSpec`` gets the same treatment against its
    ``identity()`` method, with ``pinned_digest`` exempt by design (it
    is an expectation *about* the artifact, not part of the recipe).
    """

    rule_id = "KEY001"
    summary = (
        "every Cell field and result-influencing context knob flows into "
        "the result-cache key or is declared key-exempt"
    )
    example_bad = (
        "def key_fields(self, ctx):\n"
        "    return {\"seed\": ctx.seed, \"program\": self.program}\n"
        "    # ctx.site_scale feeds the workload but never the key:\n"
        "    # two different experiments alias to one cache entry"
    )
    example_good = (
        "_KEY_EXEMPT = {\"kernel\": \"bit-identical by contract\"}\n"
        "def key_fields(self, ctx):\n"
        "    return {\"seed\": ctx.seed, \"site_scale\": ctx.site_scale,\n"
        "            \"program\": self.program, ...}"
    )

    def __init__(
        self,
        anchor: str = CELLS_SUFFIX,
        cell_class: str = "Cell",
        context_class: str = "ExperimentContext",
        context_suffix: str = COMMON_SUFFIX,
        key_method: str = "key_fields",
        hint_key_method: str = "hint_key_fields",
        exempt_name: str = "_KEY_EXEMPT",
        entry: str = "execute_cell",
        spec_class: str = "TraceSpec",
        spec_identity: str = "identity",
        spec_exempt: tuple[str, ...] = ("pinned_digest",),
    ):
        self.anchor = anchor
        self.cell_class = cell_class
        self.context_class = context_class
        self.context_suffix = context_suffix
        self.key_method = key_method
        self.hint_key_method = hint_key_method
        self.exempt_name = exempt_name
        self.entry = entry
        self.spec_class = spec_class
        self.spec_identity = spec_identity
        self.spec_exempt = spec_exempt

    def check_project(self, anchor_ctx, project) -> Iterator[Finding]:
        graph = CallGraph.build(project)
        table = graph.table
        anchor_mod = module_for(table, anchor_ctx)
        if anchor_mod is None:  # pragma: no cover - table always has anchor
            return
        cell = anchor_mod.classes.get(self.cell_class)
        if cell is None:
            yield self.finding(
                anchor_ctx, anchor_ctx.tree,
                f"cannot find class {self.cell_class!r} in the anchor "
                f"module; the cache-key completeness proof has nothing "
                f"to check",
            )
            return

        exempt = literal_str_dict(anchor_mod.assigns.get(self.exempt_name)) or {}
        fields = dataclass_fields(cell)
        key_path = method_closure(cell, self.key_method)
        if not key_path:
            yield self.finding(
                anchor_ctx, cell.node,
                f"{self.cell_class}.{self.key_method} is missing: cells "
                f"have no cache-key identity at all",
            )
            return
        keyed_fields, keyed_knobs = self._key_reads(key_path)

        # -- Cell fields: always result-influencing by construction.
        for name, node in sorted(fields.items()):
            if name in keyed_fields or name in exempt:
                continue
            yield self.finding(
                anchor_ctx, node,
                f"Cell field {name!r} never flows into "
                f"{self.key_method}() and is not declared in "
                f"{self.exempt_name}: two cells differing only in "
                f"{name!r} would alias to one cache entry",
            )

        # -- Context knobs: influencing iff read in the execution region.
        context = find_class(table, self.context_class, self.context_suffix)
        knobs = init_knobs(context) if context is not None else {}
        influencing = self._influencing_knobs(graph, set(knobs), key_path)
        for name in sorted(knobs):
            if name in keyed_knobs or name in exempt:
                continue
            reader = influencing.get(name)
            if reader is None:
                continue
            yield self.finding(
                anchor_ctx, knobs[name],
                f"context knob {name!r} can influence simulated results "
                f"(read in {reader}) but never flows into "
                f"{self.key_method}() and is not declared in "
                f"{self.exempt_name}",
            )

        # -- Exemptions must stay honest.
        for name, (key_node, _) in sorted(exempt.items()):
            if name in keyed_fields or name in keyed_knobs:
                yield self.finding(
                    anchor_ctx, key_node,
                    f"stale exemption: {name!r} is declared in "
                    f"{self.exempt_name} but *does* flow into "
                    f"{self.key_method}() — delete the entry or the key "
                    f"field",
                )
            elif name not in fields and name not in knobs:
                yield self.finding(
                    anchor_ctx, key_node,
                    f"unknown name {name!r} in {self.exempt_name}: it is "
                    f"neither a {self.cell_class} field nor a "
                    f"{self.context_class} knob",
                )

        yield from self._check_spec_identity(table)

    def _key_reads(self, key_path) -> tuple[set[str], set[str]]:
        """Attribute names read on the key path, split by receiver:
        ``self.<field>`` reads versus ``<ctx param>.<knob>`` reads."""
        keyed_fields: set[str] = set()
        keyed_knobs: set[str] = set()
        for fn in key_path:
            params = non_self_params(fn)
            for (base, attr) in attribute_reads(fn.node, {"self"} | params):
                if base == "self":
                    keyed_fields.add(attr)
                else:
                    keyed_knobs.add(attr)
        return keyed_fields, keyed_knobs

    def _influencing_knobs(self, graph, knob_names, key_path) -> dict[str, str]:
        """knob -> qualname of an execution-region function reading it.

        The region is everything reachable from the entry point on the
        call graph, minus the key path itself (reading a knob *in order
        to key it* is not influence).  Reads are collected on any
        receiver name — an over-approximation that can only demand more
        keying, never less.
        """
        roots = [fn.qualname for fn in graph.functions_named(self.entry)]
        exclude = {fn.qualname for fn in key_path}
        influencing: dict[str, str] = {}
        for fn in graph.reachable_from(roots):
            if fn.qualname in exclude or fn.name == self.hint_key_method:
                continue
            for (_, attr) in attribute_reads(fn.node):
                if attr in knob_names:
                    influencing.setdefault(attr, fn.qualname)
        return influencing

    def _check_spec_identity(self, table) -> Iterator[Finding]:
        """TraceSpec fields must reach ``identity()`` or be exempt."""
        spec = find_class(table, self.spec_class)
        if spec is None:
            return
        identity_path = method_closure(spec, self.spec_identity)
        if not identity_path:
            return
        spec_ctx = table.modules[spec.module].ctx
        read = {
            attr for fn in identity_path
            for (base, attr) in attribute_reads(fn.node, {"self"})
        }
        for name, node in sorted(dataclass_fields(spec).items()):
            if name in read or name in self.spec_exempt:
                continue
            yield self.finding(
                spec_ctx, node,
                f"{self.spec_class} field {name!r} never flows into "
                f"{self.spec_identity}(): two different trace recipes "
                f"could share a spec digest",
            )


@register
class CacheKeyCanonicalizationRule(ProjectRule):
    """KEY002: the cache key serializes canonically.

    The key hasher must ``json.dumps(..., sort_keys=True)`` (two
    writers of the same identity must produce the same digest), and the
    key-field builders must not put machine- or process-dependent
    representations into the payload: unordered ``set`` values
    serialize in hash order, ``repr()`` of floats is implementation
    lore, and ``os.getcwd``/``locale``/``time``/``platform`` values key
    the *host*, not the experiment.
    """

    rule_id = "KEY002"
    summary = (
        "cache-key construction is canonical: sorted JSON, no sets, no "
        "repr(), no path/locale/time/host values"
    )
    example_bad = (
        "fields = {\"inputs\": set(self.inputs),   # hash-order JSON\n"
        "          \"cutoff\": repr(self.cutoff),  # impl-defined text\n"
        "          \"root\": os.getcwd()}          # keys the host"
    )
    example_good = (
        "fields = {\"inputs\": sorted(self.inputs), \"cutoff\": self.cutoff}\n"
        "canonical = json.dumps(payload, sort_keys=True)"
    )

    #: Dotted call prefixes whose values are host/process state.
    TAINTED_PREFIXES = ("locale.", "time.", "platform.", "tempfile.", "socket.")
    TAINTED_CALLS = frozenset({
        "os.getcwd", "os.path.abspath", "os.path.realpath", "os.getpid",
        "Path.cwd",
    })

    def __init__(
        self,
        anchor: str = CACHE_SUFFIX,
        hasher: str = "_canonical_key",
        key_methods: tuple[str, ...] = ("key_fields", "hint_key_fields"),
    ):
        self.anchor = anchor
        self.hasher = hasher
        self.key_methods = key_methods

    def check_project(self, anchor_ctx, project) -> Iterator[Finding]:
        from repro.lint.graph import ModuleTable

        table = ModuleTable.build(project)
        anchor_mod = module_for(table, anchor_ctx)
        if anchor_mod is not None:
            hasher = anchor_mod.functions.get(self.hasher)
            if hasher is not None:
                yield from self._check_hasher(anchor_ctx, hasher)
        for mod_name in sorted(table.modules):
            module = table.modules[mod_name]
            for cls_name in sorted(module.classes):
                cls_info = module.classes[cls_name]
                for method_name in self.key_methods:
                    for fn in method_closure(cls_info, method_name):
                        yield from self._check_key_builder(module.ctx, fn)

    def _check_hasher(self, ctx, hasher) -> Iterator[Finding]:
        for node in ast.walk(hasher.node):
            if not (isinstance(node, ast.Call)
                    and _dotted(node.func) == "json.dumps"):
                continue
            sort_keys = next(
                (kw.value for kw in node.keywords if kw.arg == "sort_keys"),
                None,
            )
            if not (isinstance(sort_keys, ast.Constant)
                    and sort_keys.value is True):
                yield self.finding(
                    ctx, node,
                    f"the key hasher {self.hasher}() serializes without "
                    f"sort_keys=True: key bytes depend on dict insertion "
                    f"order, so equal identities can hash differently",
                )

    def _check_key_builder(self, ctx, fn) -> Iterator[Finding]:
        sorted_spans: list[tuple[int, int, int, int]] = []
        for node in ast.walk(fn.node):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "sorted"):
                sorted_spans.append((
                    node.lineno, node.col_offset,
                    node.end_lineno or node.lineno,
                    node.end_col_offset or 0,
                ))

        def inside_sorted(node) -> bool:
            for (l0, c0, l1, c1) in sorted_spans:
                if ((node.lineno, node.col_offset) >= (l0, c0)
                        and (node.end_lineno or node.lineno,
                             node.end_col_offset or 0) <= (l1, c1)):
                    return True
            return False

        label = f"{fn.qualname.rsplit('.', 2)[-2]}.{fn.name}"
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Set) and not inside_sorted(node):
                yield self.finding(
                    ctx, node,
                    f"set literal in cache-key builder {label}: JSON "
                    f"serializes sets in hash order — wrap in sorted()",
                )
            elif isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if (dotted in ("set", "frozenset")
                        and not inside_sorted(node)):
                    yield self.finding(
                        ctx, node,
                        f"{dotted}() in cache-key builder {label}: "
                        f"unordered values serialize in hash order — "
                        f"wrap in sorted()",
                    )
                elif dotted == "repr":
                    yield self.finding(
                        ctx, node,
                        f"repr() in cache-key builder {label}: textual "
                        f"float/object representations are not canonical "
                        f"— let the JSON layer serialize the raw value",
                    )
                elif dotted is not None and (
                        dotted in self.TAINTED_CALLS
                        or dotted.startswith(self.TAINTED_PREFIXES)):
                    yield self.finding(
                        ctx, node,
                        f"{dotted}() in cache-key builder {label}: the "
                        f"value depends on the host or process, not the "
                        f"experiment, so equal experiments key "
                        f"differently across machines",
                    )


@register
class EnvKnobContractRule(ProjectRule):
    """ENV001: environment reads honor the ``ENV_KNOBS`` contract.

    Three checks, all anchored on the registry declaration:

    * no inline ``os.environ``/``os.getenv`` read outside the
      :mod:`repro.utils.env` seam — an undeclared input is invisible to
      the knob inventory (and to KEY001's influence reasoning);
    * every accessor call names a declared knob (literal or resolvable
      string constant), with the parser kind and any literal default
      matching the declaration;
    * every declared knob is read by some accessor in the linted set —
      checked only when the set contains accessor calls outside the
      anchor module, so linting the anchor alone does not report the
      whole registry stale.
    """

    rule_id = "ENV001"
    summary = (
        "os.environ reads go through the repro.utils.env accessors and "
        "match the ENV_KNOBS contract registry"
    )
    example_bad = "jobs = int(os.environ.get(\"REPRO_JOBS\", \"1\"))"
    example_good = (
        "# common.py:  ENV_KNOBS = {\"REPRO_JOBS\": (\"int\", 1, \"...\")}\n"
        "jobs = env_int(\"REPRO_JOBS\", 1, error=ExperimentError)"
    )

    def __init__(
        self,
        anchor: str = COMMON_SUFFIX,
        registry_name: str = "ENV_KNOBS",
        seam_suffix: str = ENV_SEAM_SUFFIX,
    ):
        self.anchor = anchor
        self.registry_name = registry_name
        self.seam_suffix = seam_suffix

    def check_project(self, anchor_ctx, project) -> Iterator[Finding]:
        from repro.lint.graph import ModuleTable

        table = ModuleTable.build(project)
        anchor_mod = module_for(table, anchor_ctx)
        declared = literal_str_dict(
            anchor_mod.assigns.get(self.registry_name)
            if anchor_mod is not None else None
        )
        if declared is None:
            yield self.finding(
                anchor_ctx, anchor_ctx.tree,
                f"the {self.registry_name} contract registry (a literal "
                f"dict of knob name -> (parser, default, description)) "
                f"is missing from the anchor module",
            )
            return

        used: set[str] = set()
        outside_calls = 0
        for mod_name in sorted(table.modules):
            module = table.modules[mod_name]
            if module.ctx.matches(self.seam_suffix):
                continue
            for node in inline_env_reads(module):
                yield self.finding(
                    module.ctx, node,
                    "inline os.environ read: declare the knob in "
                    f"{self.registry_name} and read it through the "
                    "repro.utils.env accessors so the knob inventory "
                    "stays complete",
                )
            for parser, call in accessor_calls(module):
                if module is not anchor_mod:
                    outside_calls += 1
                yield from self._check_accessor_call(
                    table, module, declared, used, parser, call
                )

        if outside_calls:
            for name, (key_node, _) in sorted(declared.items()):
                if name not in used:
                    yield self.finding(
                        anchor_ctx, key_node,
                        f"declared env knob {name!r} is never read "
                        f"through an accessor in the linted set: the "
                        f"declaration is stale (or the consumer "
                        f"bypasses the seam)",
                    )

    def _check_accessor_call(
        self, table, module, declared, used, parser, call
    ) -> Iterator[Finding]:
        if not call.args:
            return
        name = resolve_str_constant(call.args[0], module, table)
        if name is None:
            yield self.finding(
                module.ctx, call,
                "env-knob name is not a resolvable string constant; the "
                f"{self.registry_name} contract cannot be checked for "
                "this read",
            )
            return
        used.add(name)
        if name not in declared:
            yield self.finding(
                module.ctx, call,
                f"undeclared env knob {name!r}: add it to "
                f"{self.registry_name} (name, parser, default) so the "
                f"inventory of result-influencing inputs stays complete",
            )
            return
        _, value_node = declared[name]
        spec = value_node.elts if isinstance(value_node, ast.Tuple) else []
        declared_parser = (
            spec[0].value
            if spec and isinstance(spec[0], ast.Constant) else None
        )
        if declared_parser is not None and declared_parser != parser:
            yield self.finding(
                module.ctx, call,
                f"env knob {name!r} is declared with parser "
                f"{declared_parser!r} but read as {parser!r}: one of the "
                f"two lies about the knob's type",
            )
        declared_default = (
            spec[1] if len(spec) > 1 and isinstance(spec[1], ast.Constant)
            else None
        )
        call_default = call.args[1] if len(call.args) > 1 else next(
            (kw.value for kw in call.keywords if kw.arg == "default"), None
        )
        if (declared_default is not None
                and isinstance(call_default, ast.Constant)
                and call_default.value != declared_default.value):
            yield self.finding(
                module.ctx, call,
                f"env knob {name!r} is declared with default "
                f"{declared_default.value!r} but read with default "
                f"{call_default.value!r}: the contract and the call "
                f"site disagree",
            )


class _StoreFileRule(FileRule):
    """Shared scope: the ATM rules run on artifact-store modules only.

    ``fragments`` are path fragments (with directory slashes) naming
    the store layers; the atomic-write seam itself is exempt — it is
    the one place a raw write is the point.
    """

    def __init__(
        self,
        fragments: tuple[str, ...] = STORE_FRAGMENTS,
        seam_suffix: str = IO_SEAM_SUFFIX,
    ):
        self.fragments = fragments
        self.seam_suffix = seam_suffix

    def applies(self, ctx) -> bool:
        if ctx.matches(self.seam_suffix):
            return False
        posix = "/" + ctx.path.as_posix()
        return any(fragment in posix for fragment in self.fragments)


@register
class AtomicWriteSeamRule(_StoreFileRule):
    """ATM001: store modules write through the atomic seam only.

    A bare write-mode ``open`` (or ``Path.write_text``/``write_bytes``,
    or a hand-rolled ``os.fdopen``) in a cache/trace/bench store module
    can be interrupted between truncate and flush, and a concurrent
    reader then parses half a file.  Every durable write goes through
    :func:`repro.utils.io.atomic_write_text` — temp file in the target
    directory, then ``os.replace`` — so readers see the old bytes or
    the new bytes, never a mixture.
    """

    rule_id = "ATM001"
    summary = (
        "artifact-store modules write through the repro.utils.io "
        "atomic-write seam, never a bare write-mode open"
    )
    example_bad = (
        "with open(path, \"w\") as stream:   # torn on interrupt\n"
        "    stream.write(payload)"
    )
    example_good = "atomic_write_text(path, payload)   # mkstemp + os.replace"

    def check(self, ctx) -> Iterator[Finding]:
        for node, description in raw_write_calls(ctx.tree):
            yield self.finding(
                ctx, node,
                f"raw write ({description}) in an artifact-store module: "
                f"route it through repro.utils.io.atomic_write_text/"
                f"atomic_write_json so a reader never observes a torn "
                f"file",
            )


@register
class ExistsThenWriteRule(_StoreFileRule):
    """ATM002: no exists-then-write races in store modules.

    ``if not os.path.exists(p): open(p, "w")`` hands a concurrent
    writer the window between the test and the write; under the
    runner's process pool that window is hit in practice.  Guard-free
    idioms close it: ``os.makedirs(..., exist_ok=True)`` for
    directories, unconditional atomic replace for files (last writer
    wins with identical content-addressed bytes).
    """

    rule_id = "ATM002"
    summary = (
        "no exists-then-write (TOCTOU) patterns in artifact-store "
        "modules; use exist_ok/EAFP plus atomic replace"
    )
    example_bad = (
        "if not os.path.exists(directory):\n"
        "    os.makedirs(directory)   # races a concurrent worker"
    )
    example_good = "os.makedirs(directory, exist_ok=True)"

    def check(self, ctx) -> Iterator[Finding]:
        for node, description in exists_guarded_writes(ctx.tree):
            yield self.finding(
                ctx, node,
                f"exists-then-write race: the guarded {description} can "
                f"interleave with a concurrent worker between the "
                f"existence test and the write — use exist_ok=True / "
                f"EAFP with an atomic replace instead",
            )
