"""REG001: experiment ids, runners, and golden files stay in lockstep.

Every id in ``experiments/registry.EXPERIMENT_IDS`` is a promise: the
CLI accepts it, a runner produces it, and ``benchmarks/results/`` holds
the golden rendering the benchmark harness asserts shape claims
against.  An id without a golden means a paper table silently stops
being regression-checked; a golden without an id is a stale artifact
that no longer corresponds to any runnable experiment.  Grouped ids
(declared in ``registry.GROUPED_EXPERIMENT_IDS``) aggregate per-program
experiments and persist no golden of their own.

Because the registry builds its runner table programmatically (the
per-program figure ids are generated in a loop), this rule resolves the
id set by importing the module rather than by AST pattern-matching —
but only when the linted ``registry.py`` is the very module that would
be imported, so linting a fixture tree never reads the real registry.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Sequence

from repro.lint.findings import Finding, Severity
from repro.lint.rules import ProjectRule, register

__all__ = ["ExperimentGoldenRule"]

GOLDEN_SUFFIX = ".txt"


@register
class ExperimentGoldenRule(ProjectRule):
    """REG001: every experiment id has a runner and a golden, and back.

    Constructor arguments exist so tests can aim the rule at synthetic
    id sets and golden directories; the registered instance resolves
    both from the linted registry module itself.
    """

    rule_id = "REG001"
    severity = Severity.ERROR
    summary = "experiment ids, runners, and benchmarks/results goldens agree"
    anchor = "experiments/registry.py"

    def __init__(
        self,
        experiment_ids: Sequence[str] | None = None,
        grouped_ids: Sequence[str] | None = None,
        runners: dict | None = None,
        results_dir: Path | str | None = None,
    ):
        self._experiment_ids = experiment_ids
        self._grouped_ids = grouped_ids
        self._runners = runners
        self._results_dir = Path(results_dir) if results_dir is not None else None

    def check_project(self, anchor_ctx, project) -> Iterator[Finding]:
        resolved = self._resolve(anchor_ctx)
        if resolved is None:
            return
        ids, grouped, runners, results_dir = resolved

        for experiment_id in ids:
            runner = runners.get(experiment_id)
            if not callable(runner):
                yield self._at(anchor_ctx,
                               f"experiment id {experiment_id!r} has no "
                               "callable runner; 'repro experiment "
                               f"{experiment_id}' would fail")
        stray_grouped = sorted(set(grouped) - set(ids))
        for experiment_id in stray_grouped:
            yield self._at(anchor_ctx,
                           f"GROUPED_EXPERIMENT_IDS entry {experiment_id!r} "
                           "is not a registered experiment id")

        if results_dir is None or not results_dir.is_dir():
            # Installed without the benchmark tree (e.g. a wheel): the
            # golden cross-check has nothing to compare against.
            return
        goldens = {
            p.name[:-len(GOLDEN_SUFFIX)]
            for p in results_dir.iterdir()
            if p.name.endswith(GOLDEN_SUFFIX)
        }
        for experiment_id in ids:
            if experiment_id in grouped:
                continue
            if experiment_id not in goldens:
                yield self._at(anchor_ctx,
                               f"experiment {experiment_id!r} has no golden "
                               f"{experiment_id}{GOLDEN_SUFFIX} under "
                               f"{results_dir}; its shape claims are no "
                               "longer regression-checked")
        for golden in sorted(goldens - set(ids)):
            yield self._at(anchor_ctx,
                           f"golden {golden}{GOLDEN_SUFFIX} under "
                           f"{results_dir} matches no experiment id; it is "
                           "stale and can drift from any runnable result")

    # -- resolution ------------------------------------------------------

    def _resolve(self, anchor_ctx):
        """(ids, grouped, runners, results_dir) or None to skip."""
        if self._experiment_ids is not None:
            runners = self._runners
            if runners is None:
                runners = {i: lambda ctx: None for i in self._experiment_ids}
            return (tuple(self._experiment_ids),
                    frozenset(self._grouped_ids or ()),
                    runners, self._results_dir)

        from repro.experiments import registry

        module_file = getattr(registry, "__file__", None)
        if module_file is None:
            return None
        if Path(module_file).resolve() != anchor_ctx.path.resolve():
            # Linting some other tree's registry.py: the imported ids
            # would not describe it, so stay silent rather than wrong.
            return None
        results_dir = self._results_dir
        if results_dir is None:
            results_dir = (
                anchor_ctx.path.resolve().parents[3] / "benchmarks" / "results"
            )
        grouped = frozenset(getattr(registry, "GROUPED_EXPERIMENT_IDS", ()))
        return (registry.EXPERIMENT_IDS, grouped, dict(registry._RUNNERS),
                results_dir)

    def _at(self, ctx, message: str) -> Finding:
        return Finding(path=ctx.display, line=1, col=0, rule=self.rule_id,
                       severity=self.severity, message=message)
