"""REG001/EXP002: experiment ids, runners, cells, and goldens agree.

Every id in ``experiments/registry.EXPERIMENT_IDS`` is a promise: the
CLI accepts it, a runner produces it, and ``benchmarks/results/`` holds
the golden rendering the benchmark harness asserts shape claims
against.  An id without a golden means a paper table silently stops
being regression-checked; a golden without an id is a stale artifact
that no longer corresponds to any runnable experiment.  Grouped ids
(declared in ``registry.GROUPED_EXPERIMENT_IDS``) aggregate per-program
experiments and persist no golden of their own.

Because the registry builds its runner table programmatically (the
per-program figure ids are generated in a loop), this rule resolves the
id set by importing the module rather than by AST pattern-matching —
but only when the linted ``registry.py`` is the very module that would
be imported, so linting a fixture tree never reads the real registry.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, Sequence

from repro.lint.findings import Finding, Severity
from repro.lint.rules import ProjectRule, register

__all__ = ["ExperimentGoldenRule", "CellPairingRule"]

GOLDEN_SUFFIX = ".txt"


@register
class ExperimentGoldenRule(ProjectRule):
    """REG001: every experiment id has a runner and a golden, and back.

    Constructor arguments exist so tests can aim the rule at synthetic
    id sets and golden directories; the registered instance resolves
    both from the linted registry module itself.
    """

    rule_id = "REG001"
    severity = Severity.ERROR
    summary = "experiment ids, runners, and benchmarks/results goldens agree"
    anchor = "experiments/registry.py"
    example_bad = (
        '# registry.py declares "figure9" but experiments/figure9.py\n'
        "# (or its benchmarks/results golden) does not exist"
    )
    example_good = (
        "# every EXPERIMENT_IDS entry has a runner module and a\n"
        "# benchmarks/results/<id>.json golden, and nothing extra"
    )

    def __init__(
        self,
        experiment_ids: Sequence[str] | None = None,
        grouped_ids: Sequence[str] | None = None,
        runners: dict | None = None,
        results_dir: Path | str | None = None,
    ):
        self._experiment_ids = experiment_ids
        self._grouped_ids = grouped_ids
        self._runners = runners
        self._results_dir = Path(results_dir) if results_dir is not None else None

    def check_project(self, anchor_ctx, project) -> Iterator[Finding]:
        resolved = self._resolve(anchor_ctx)
        if resolved is None:
            return
        ids, grouped, runners, results_dir = resolved

        for experiment_id in ids:
            runner = runners.get(experiment_id)
            if not callable(runner):
                yield self._at(anchor_ctx,
                               f"experiment id {experiment_id!r} has no "
                               "callable runner; 'repro experiment "
                               f"{experiment_id}' would fail")
        stray_grouped = sorted(set(grouped) - set(ids))
        for experiment_id in stray_grouped:
            yield self._at(anchor_ctx,
                           f"GROUPED_EXPERIMENT_IDS entry {experiment_id!r} "
                           "is not a registered experiment id")

        if results_dir is None or not results_dir.is_dir():
            # Installed without the benchmark tree (e.g. a wheel): the
            # golden cross-check has nothing to compare against.
            return
        goldens = {
            p.name[:-len(GOLDEN_SUFFIX)]
            for p in results_dir.iterdir()
            if p.name.endswith(GOLDEN_SUFFIX)
        }
        for experiment_id in ids:
            if experiment_id in grouped:
                continue
            if experiment_id not in goldens:
                yield self._at(anchor_ctx,
                               f"experiment {experiment_id!r} has no golden "
                               f"{experiment_id}{GOLDEN_SUFFIX} under "
                               f"{results_dir}; its shape claims are no "
                               "longer regression-checked")
        for golden in sorted(goldens - set(ids)):
            yield self._at(anchor_ctx,
                           f"golden {golden}{GOLDEN_SUFFIX} under "
                           f"{results_dir} matches no experiment id; it is "
                           "stale and can drift from any runnable result")

    # -- resolution ------------------------------------------------------

    def _resolve(self, anchor_ctx):
        """(ids, grouped, runners, results_dir) or None to skip."""
        if self._experiment_ids is not None:
            runners = self._runners
            if runners is None:
                runners = {i: lambda ctx: None for i in self._experiment_ids}
            return (tuple(self._experiment_ids),
                    frozenset(self._grouped_ids or ()),
                    runners, self._results_dir)

        from repro.experiments import registry

        module_file = getattr(registry, "__file__", None)
        if module_file is None:
            return None
        if Path(module_file).resolve() != anchor_ctx.path.resolve():
            # Linting some other tree's registry.py: the imported ids
            # would not describe it, so stay silent rather than wrong.
            return None
        results_dir = self._results_dir
        if results_dir is None:
            results_dir = (
                anchor_ctx.path.resolve().parents[3] / "benchmarks" / "results"
            )
        grouped = frozenset(getattr(registry, "GROUPED_EXPERIMENT_IDS", ()))
        return (registry.EXPERIMENT_IDS, grouped, dict(registry._RUNNERS),
                results_dir)

    def _at(self, ctx, message: str) -> Finding:
        return Finding(path=ctx.display, line=1, col=0, rule=self.rule_id,
                       severity=self.severity, message=message)


def _top_level_functions(tree: ast.AST) -> dict[str, int]:
    """Module-level function names mapped to their definition lines."""
    return {
        stmt.name: stmt.lineno
        for stmt in (tree.body if isinstance(tree, ast.Module) else [])
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


@register
class CellPairingRule(ProjectRule):
    """EXP002: cell providers pair with synthesizers; schemes are known.

    The parallel runner's contract is two-sided: an experiment that
    declares ``cells`` (or ``cells_<variant>``) without the matching
    ``synthesize`` (``synthesize_<variant>``) can be scheduled but never
    reported, and a synthesizer without a provider is dead code that
    drifts.  Separately, every literal ``scheme=`` in a ``Cell``
    construction must be a registered selection scheme — a typo like
    ``"static-95"`` would not fail until deep inside a worker process.

    The scheme universe is read from the linted ASTs themselves
    (``SELECTION_SCHEMES`` in ``staticpred/selection.py`` plus the
    ``STABLE_SCHEME`` constant in ``runner/cells.py``), so fixture trees
    carry their own universe and linting a partial tree skips the check.
    """

    rule_id = "EXP002"
    severity = Severity.ERROR
    summary = "cells/synthesize declarations pair up; Cell schemes are known"
    anchor = "experiments/registry.py"
    example_bad = (
        "def cells(ctx): ...\n"
        "# no synthesize() in the same module: the parallel runner has\n"
        "# work to fan out but nothing to reassemble"
    )
    example_good = (
        "def cells(ctx): ...\n"
        "def synthesize(ctx, results): ..."
    )

    CELLS_PREFIX = "cells"
    SYNTH_PREFIX = "synthesize"

    def check_project(self, anchor_ctx, project) -> Iterator[Finding]:
        for ctx in project.glob("experiments/"):
            if ctx is anchor_ctx:
                continue  # the registry *dispatches* cells/synthesize;
                          # the pairing contract is on declaring modules
            yield from self._check_pairing(ctx)
        schemes = self._known_schemes(project)
        if schemes is not None:
            for ctx in project.files:
                yield from self._check_schemes(ctx, schemes)

    # -- provider/synthesizer pairing ------------------------------------

    def _check_pairing(self, ctx) -> Iterator[Finding]:
        functions = _top_level_functions(ctx.tree)
        for name, lineno in sorted(functions.items(), key=lambda kv: kv[1]):
            partner = self._partner(name)
            if partner is None or partner in functions:
                continue
            if name.startswith(self.CELLS_PREFIX):
                yield self._at_line(
                    ctx, lineno,
                    f"{name}() declares cells but {partner}() is missing; "
                    "the runner could schedule this experiment's cells and "
                    "then have no way to build its report",
                )
            else:
                yield self._at_line(
                    ctx, lineno,
                    f"{name}() has no matching {partner}(); a synthesizer "
                    "without a cell provider never receives results and "
                    "silently drifts from the experiment it once rendered",
                )

    def _partner(self, name: str) -> str | None:
        """``cells_x`` <-> ``synthesize_x`` (and the bare pair)."""
        for prefix, other in ((self.CELLS_PREFIX, self.SYNTH_PREFIX),
                              (self.SYNTH_PREFIX, self.CELLS_PREFIX)):
            if name == prefix:
                return other
            if name.startswith(prefix + "_"):
                return other + name[len(prefix):]
        return None

    # -- scheme literals -------------------------------------------------

    def _known_schemes(self, project) -> frozenset[str] | None:
        """The scheme universe, or None when the linted set lacks it."""
        selection_ctx = project.find("staticpred/selection.py")
        if selection_ctx is None:
            return None
        schemes = self._string_tuple_assign(
            selection_ctx.tree, "SELECTION_SCHEMES"
        )
        if schemes is None:
            return None
        known = set(schemes)
        cells_ctx = project.find("runner/cells.py")
        if cells_ctx is not None:
            for stmt in cells_ctx.tree.body:
                if (isinstance(stmt, ast.Assign)
                        and any(isinstance(t, ast.Name)
                                and t.id.endswith("_SCHEME")
                                for t in stmt.targets)
                        and isinstance(stmt.value, ast.Constant)
                        and isinstance(stmt.value.value, str)):
                    known.add(stmt.value.value)
        return frozenset(known)

    def _check_schemes(self, ctx, schemes: frozenset[str]) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not self._is_cell_construction(node):
                continue
            for keyword in node.keywords:
                if (keyword.arg == "scheme"
                        and isinstance(keyword.value, ast.Constant)
                        and isinstance(keyword.value.value, str)
                        and keyword.value.value not in schemes):
                    yield self._at_line(
                        ctx, keyword.value.lineno,
                        f"Cell scheme {keyword.value.value!r} is not in "
                        "SELECTION_SCHEMES (or a declared *_SCHEME "
                        "constant); the cell would fail selection inside "
                        "a worker process",
                    )

    @staticmethod
    def _is_cell_construction(call: ast.Call) -> bool:
        func = call.func
        if isinstance(func, ast.Name):
            return func.id == "Cell"
        return (isinstance(func, ast.Attribute)
                and func.attr == "make"
                and isinstance(func.value, ast.Name)
                and func.value.id == "Cell")

    @staticmethod
    def _string_tuple_assign(tree: ast.AST, name: str) -> list[str] | None:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    if not isinstance(node.value, (ast.Tuple, ast.List)):
                        return None
                    out = []
                    for element in node.value.elts:
                        if not (isinstance(element, ast.Constant)
                                and isinstance(element.value, str)):
                            return None
                        out.append(element.value)
                    return out
        return None

    def _at_line(self, ctx, lineno: int, message: str) -> Finding:
        return Finding(path=ctx.display, line=lineno, col=0,
                       rule=self.rule_id, severity=self.severity,
                       message=message)
