"""BIT001: no hand-rolled power-of-two index masking.

Predictor index math lives in :mod:`repro.utils.bits` (``bit_mask``,
``fold_bits``) and :mod:`repro.predictors.indexing` for a reason: a
hand-inlined ``x & (2**n - 1)`` or ``x % size`` duplicates the helper's
semantics without its width validation, and the two copies drift — the
classic outcome being an index function that silently drops high-order
bits differently from every other predictor, which changes aliasing
behaviour and therefore every collision number in the tables.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding, Severity
from repro.lint.rules import FileRule, register

__all__ = ["HandRolledMaskRule"]

BITS_MODULE_SUFFIX = "utils/bits.py"
"""The one module allowed to spell masks out — it defines the helpers."""


def _is_mask_literal(node: ast.AST) -> bool:
    """Matches ``2**n - 1`` and ``(1 << n) - 1``."""
    if not (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Sub)
            and isinstance(node.right, ast.Constant)
            and node.right.value == 1):
        return False
    left = node.left
    if not isinstance(left, ast.BinOp):
        return False
    if isinstance(left.op, ast.Pow):
        return isinstance(left.left, ast.Constant) and left.left.value == 2
    if isinstance(left.op, ast.LShift):
        return isinstance(left.left, ast.Constant) and left.left.value == 1
    return False


def _is_power_of_two_expr(node: ast.AST) -> bool:
    """Matches ``2**n``, ``1 << n``, and power-of-two int literals >= 2."""
    if isinstance(node, ast.Constant):
        value = node.value
        return (isinstance(value, int) and not isinstance(value, bool)
                and value >= 2 and (value & (value - 1)) == 0)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Pow):
            return isinstance(node.left, ast.Constant) and node.left.value == 2
        if isinstance(node.op, ast.LShift):
            return isinstance(node.left, ast.Constant) and node.left.value == 1
    return False


@register
class HandRolledMaskRule(FileRule):
    """BIT001: use ``utils.bits`` helpers instead of inline mask math.

    Flags ``x & (2**n - 1)`` / ``x & ((1 << n) - 1)`` (use
    ``bit_mask``) and ``x % <power-of-two>`` (a modulo spelled where an
    index mask is meant; use ``& bit_mask(log2_exact(size))`` or a
    ``CounterTable``'s precomputed ``mask``).
    """

    rule_id = "BIT001"
    severity = Severity.WARNING
    summary = "index masking goes through utils.bits, not inline bit math"
    example_bad = "index = hash_value & 0x3FF   # hand-rolled literal mask"
    example_good = (
        "from repro.utils.bits import bit_mask\n"
        "index = hash_value & bit_mask(10)   # or a table's .mask"
    )

    def applies(self, ctx) -> bool:
        return not ctx.matches(BITS_MODULE_SUFFIX)

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitAnd):
                if _is_mask_literal(node.right) or _is_mask_literal(node.left):
                    yield self.finding(
                        ctx, node,
                        "hand-rolled power-of-two mask; use "
                        "repro.utils.bits.bit_mask(width) so width "
                        "validation stays in one place",
                    )
            elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.BitAnd):
                if _is_mask_literal(node.value):
                    yield self.finding(
                        ctx, node,
                        "hand-rolled power-of-two mask; use "
                        "repro.utils.bits.bit_mask(width) so width "
                        "validation stays in one place",
                    )
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
                if _is_power_of_two_expr(node.right):
                    yield self.finding(
                        ctx, node,
                        "modulo by a power of two used as an index mask; "
                        "use '& repro.utils.bits.bit_mask(width)' (or a "
                        "table's precomputed .mask) instead",
                    )
