"""Rule base classes and the rule registry.

Two rule shapes exist:

:class:`FileRule`
    Checks one parsed module at a time (an :class:`ast.AST` walk).  Most
    invariants — banned calls, class contracts, hand-rolled bit masks —
    are local to a file.
:class:`ProjectRule`
    Checks cross-file agreement (registry vs. golden files, factory
    table vs. CLI choices).  A project rule names an ``anchor`` file
    suffix; it runs once per lint invocation, and only when a file
    matching the anchor is in the linted set, so linting an unrelated
    tree never trips repository-contract rules.

Rules self-register via :func:`register` at import time; the module
imports at the bottom populate the registry.  ``--select`` works on ids
or prefixes (``DET`` selects DET001 and DET002).
"""

from __future__ import annotations

import typing

from repro.errors import LintError
from repro.lint.findings import Finding, Severity

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.engine import FileContext, ProjectContext

__all__ = [
    "FileRule",
    "ProjectRule",
    "register",
    "all_rules",
    "select_rules",
    "rule_ids",
    "RULES",
]

SYNTAX_RULE_ID = "LINT001"
"""Pseudo-rule id the engine reports for files that fail to parse."""


class _RuleBase:
    """Shared identity and finding-construction helpers."""

    #: Unique id, e.g. ``DET001``; used in reports and suppressions.
    rule_id: str = "RULE000"
    severity: Severity = Severity.ERROR
    #: One-line invariant statement shown by ``repro list`` and the docs.
    summary: str = ""

    def finding(self, ctx: "FileContext", node, message: str) -> Finding:
        """Build a finding anchored at an AST node (or at line 1)."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=ctx.display, line=line, col=col,
            rule=self.rule_id, severity=self.severity, message=message,
        )


class FileRule(_RuleBase):
    """A rule evaluated independently on every linted module."""

    def applies(self, ctx: "FileContext") -> bool:
        """Whether this rule runs on ``ctx`` (override to exempt files)."""
        return True

    def check(self, ctx: "FileContext") -> typing.Iterator[Finding]:
        """Yield findings for one parsed module."""
        raise NotImplementedError


class ProjectRule(_RuleBase):
    """A rule evaluated once over the whole linted file set."""

    #: Posix path suffix of the file whose presence enables the rule.
    anchor: str = ""

    def check_project(
        self, anchor_ctx: "FileContext", project: "ProjectContext"
    ) -> typing.Iterator[Finding]:
        """Yield findings for the cross-file contract."""
        raise NotImplementedError


RULES: dict[str, _RuleBase] = {}
"""Registered rule instances keyed by rule id (import-time populated)."""


def register(rule):
    """Register a rule (instance, or class — instantiated with defaults).

    Returns its argument unchanged, so it works as a class decorator.
    """
    instance = rule() if isinstance(rule, type) else rule
    if instance.rule_id in RULES:
        raise LintError(f"duplicate lint rule id {instance.rule_id!r}")
    RULES[instance.rule_id] = instance
    return rule


def all_rules() -> list[_RuleBase]:
    """Every registered rule, in id order."""
    return [RULES[rule_id] for rule_id in sorted(RULES)]


def rule_ids() -> tuple[str, ...]:
    """Sorted registered rule ids (plus the engine's syntax pseudo-rule)."""
    return tuple(sorted(set(RULES) | {SYNTAX_RULE_ID}))


def select_rules(selectors: typing.Iterable[str]) -> list[_RuleBase]:
    """Resolve ``--select`` tokens (exact ids or prefixes) to rules.

    >>> [r.rule_id for r in select_rules(["DET"])]
    ['DET001', 'DET002', 'DET003']
    """
    chosen: dict[str, _RuleBase] = {}
    for raw in selectors:
        token = raw.strip()
        if not token:
            continue
        matches = {
            rule_id: rule for rule_id, rule in RULES.items()
            if rule_id == token or rule_id.startswith(token)
        }
        if not matches and token != SYNTAX_RULE_ID:
            known = ", ".join(sorted(RULES))
            raise LintError(
                f"--select {token!r} matches no lint rule; known rules: {known}"
            )
        chosen.update(matches)
    return [chosen[rule_id] for rule_id in sorted(chosen)]


# Import the rule modules so their ``register`` calls populate RULES.
from repro.lint.rules import bitops  # noqa: E402,F401  (registration import)
from repro.lint.rules import conc  # noqa: E402,F401
from repro.lint.rules import determinism  # noqa: E402,F401
from repro.lint.rules import experiments  # noqa: E402,F401
from repro.lint.rules import parallelism  # noqa: E402,F401
from repro.lint.rules import perf  # noqa: E402,F401
from repro.lint.rules import predictors  # noqa: E402,F401
from repro.lint.rules import provenance  # noqa: E402,F401
from repro.lint.rules import widths  # noqa: E402,F401
