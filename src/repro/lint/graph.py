"""Project-wide symbol table and call graph over a linted file set.

The per-file rules of :mod:`repro.lint.rules` see one AST at a time;
the parallel-runner invariants (worker purity, pickle safety) are
properties of *paths through the program* — ``execute_cell`` calls
``ctx.run`` calls ``self.workload`` calls ``build_workload`` — so they
need a resolver that can follow a call from one module into another.

This module builds that resolver from nothing but the linted ASTs:

:class:`ModuleTable`
    Maps every linted file to a module record (dotted name, imports,
    top-level functions, classes with methods, module-level assigns).
    Import targets resolve by exact dotted name first and then by path
    suffix, so a fixture tree that spells ``from repro.runner.cells
    import Cell`` but lives under ``tmp/runner/cells.py`` still links.
:class:`CallGraph`
    One node per function or method (qualified as
    ``module.Class.method``), one edge per statically resolvable call:
    direct names, imported names, module-attribute chains,
    ``self.``/``cls.`` methods (including inherited ones), annotated
    parameters, locally constructed instances, constructor calls, and
    function references passed as call arguments (a referenced callee
    may be invoked by the receiver, so reachability treats it as
    called).  Unresolvable calls — stdlib, dynamic dispatch — simply
    produce no edge: the graph under-approximates edges out of the
    analyzed set and over-approximates within it, which is the right
    bias for "nothing reachable from a worker writes a global".

Everything is deterministic: modules, functions, and edges iterate in
sorted order, so lint output (and the analysis cache keyed on it) never
depends on filesystem enumeration order.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.engine import FileContext, ProjectContext

__all__ = ["FunctionInfo", "ClassInfo", "ModuleInfo", "ModuleTable", "CallGraph"]

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def module_name_for(ctx: "FileContext") -> str:
    """Dotted module name of a linted file.

    Walks up from the file while the directory is a package (has an
    ``__init__.py``); a file outside any package is just its stem.
    """
    path = ctx.path.resolve()
    parts = [path.stem if path.stem != "__init__" else None]
    parent = path.parent
    while (parent / "__init__.py").is_file():
        parts.append(parent.name)
        if parent.parent == parent:  # pragma: no cover - filesystem root
            break
        parent = parent.parent
    return ".".join(reversed([p for p in parts if p]))


class FunctionInfo:
    """One function, method, nested function, or lambda in the graph."""

    __slots__ = ("qualname", "module", "ctx", "node", "cls")

    def __init__(self, qualname: str, module: str, ctx: "FileContext",
                 node: ast.AST, cls: str | None = None):
        self.qualname = qualname
        self.module = module
        self.ctx = ctx
        self.node = node
        self.cls = cls

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionInfo({self.qualname!r})"


class ClassInfo:
    """One class definition: methods plus (resolvable) base names."""

    __slots__ = ("name", "qualname", "module", "node", "methods", "bases")

    def __init__(self, name: str, qualname: str, module: str,
                 node: ast.ClassDef):
        self.name = name
        self.qualname = qualname
        self.module = module
        self.node = node
        self.methods: dict[str, FunctionInfo] = {}
        #: Base expressions as dotted strings (resolved later, best effort).
        self.bases: list[str] = [
            dotted for dotted in (_dotted(b) for b in node.bases)
            if dotted is not None
        ]


class ModuleInfo:
    """Symbol table of one linted module."""

    __slots__ = ("name", "ctx", "imports", "import_froms", "functions",
                 "classes", "assigns")

    def __init__(self, name: str, ctx: "FileContext"):
        self.name = name
        self.ctx = ctx
        #: ``import a.b.c [as m]`` -> {local head or alias: "a.b.c"}.
        self.imports: dict[str, str] = {}
        #: ``from mod import x [as y]`` -> {y: ("mod", "x")}.
        self.import_froms: dict[str, tuple[str, str]] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: Module-level simple ``NAME = <expr>`` assignments.
        self.assigns: dict[str, ast.expr] = {}


def _dotted(node: ast.AST) -> str | None:
    """Flatten a ``Name``/``Attribute`` chain to ``a.b.c`` (else None)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class ModuleTable:
    """Every linted module's symbol table, with an import resolver."""

    def __init__(self, modules: dict[str, ModuleInfo]):
        self.modules = modules
        self._by_path = {
            info.ctx.path.resolve().as_posix(): info
            for info in modules.values()
        }

    @classmethod
    def build(cls, project: "ProjectContext") -> "ModuleTable":
        modules: dict[str, ModuleInfo] = {}
        for ctx in sorted(project.files, key=lambda c: c.path.as_posix()):
            info = ModuleInfo(module_name_for(ctx), ctx)
            cls._index_module(info)
            # Last writer wins on name collisions (two fixture trees with
            # the same stem); paths disambiguate via find_by_suffix.
            modules[info.name] = info
        return cls(modules)

    @staticmethod
    def _index_module(info: ModuleInfo) -> None:
        for stmt in info.ctx.tree.body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else alias.name
                    info.imports[local] = target
            elif isinstance(stmt, ast.ImportFrom):
                module = ("." * stmt.level) + (stmt.module or "")
                for alias in stmt.names:
                    info.import_froms[alias.asname or alias.name] = (
                        module, alias.name
                    )
            elif isinstance(stmt, _FUNC_NODES):
                qual = f"{info.name}.{stmt.name}"
                info.functions[stmt.name] = FunctionInfo(
                    qual, info.name, info.ctx, stmt
                )
            elif isinstance(stmt, ast.ClassDef):
                cls_info = ClassInfo(
                    stmt.name, f"{info.name}.{stmt.name}", info.name, stmt
                )
                for member in stmt.body:
                    if isinstance(member, _FUNC_NODES):
                        cls_info.methods[member.name] = FunctionInfo(
                            f"{cls_info.qualname}.{member.name}",
                            info.name, info.ctx, member, cls=stmt.name,
                        )
                info.classes[stmt.name] = cls_info
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        info.assigns[target.id] = stmt.value
            elif (isinstance(stmt, ast.AnnAssign)
                  and isinstance(stmt.target, ast.Name)
                  and stmt.value is not None):
                info.assigns[stmt.target.id] = stmt.value

    # -- resolution ------------------------------------------------------

    def resolve_module(self, dotted: str,
                       importer: ModuleInfo | None = None) -> ModuleInfo | None:
        """The linted module a dotted import target refers to, if any.

        Exact name match wins; otherwise the longest path-suffix match
        (``repro.runner.cells`` finds a fixture's ``runner/cells.py``).
        Relative targets (leading dots) resolve against the importer.
        """
        if dotted.startswith("."):
            if importer is None:
                return None
            return self._resolve_relative(dotted, importer)
        info = self.modules.get(dotted)
        if info is not None:
            return info
        parts = dotted.split(".")
        for start in range(len(parts)):
            tail = parts[start:]
            for suffix in (
                "/".join(tail) + ".py",
                "/".join(tail) + "/__init__.py",
            ):
                matches = sorted(
                    path for path in self._by_path
                    if path.endswith("/" + suffix) or path == suffix
                )
                if matches:
                    return self._by_path[matches[0]]
        return None

    def _resolve_relative(self, dotted: str,
                          importer: ModuleInfo) -> ModuleInfo | None:
        level = len(dotted) - len(dotted.lstrip("."))
        module = dotted[level:]
        base = importer.ctx.path.resolve().parent
        for _ in range(level - 1):
            base = base.parent
        if module:
            candidate = base.joinpath(*module.split("."))
        else:
            candidate = base
        for path in (candidate.with_suffix(".py"),
                     candidate / "__init__.py"):
            info = self._by_path.get(path.as_posix())
            if info is not None:
                return info
        return None

    def resolve_class(self, dotted: str,
                      importer: ModuleInfo) -> ClassInfo | None:
        """Resolve a class reference (bare or module-qualified) to a record."""
        if "." not in dotted:
            local = importer.classes.get(dotted)
            if local is not None:
                return local
            origin = importer.import_froms.get(dotted)
            if origin is not None:
                target = self.resolve_module(origin[0], importer)
                if target is not None:
                    return target.classes.get(origin[1])
            return None
        head, attr = dotted.rsplit(".", 1)
        module = self._resolve_value_module(head, importer)
        if module is not None:
            return module.classes.get(attr)
        return None

    def _resolve_value_module(self, dotted: str,
                              importer: ModuleInfo) -> ModuleInfo | None:
        """The module a dotted *value* expression names, via imports."""
        target = importer.imports.get(dotted)
        if target is not None:
            return self.resolve_module(target, importer)
        # ``import a.b.c`` binds ``a``; ``a.b.c`` in an expression walks
        # attribute access down the real package path.
        head = dotted.split(".", 1)[0]
        if head in importer.imports:
            return self.resolve_module(dotted, importer)
        origin = importer.import_froms.get(dotted)
        if origin is not None:
            # ``from pkg import mod`` used as ``mod.f()``.
            module, name = origin
            return self.resolve_module(
                (module + "." + name) if module else name, importer
            )
        return None


class CallGraph:
    """Functions and resolved call edges over a :class:`ModuleTable`."""

    def __init__(self, table: ModuleTable):
        self.table = table
        self.functions: dict[str, FunctionInfo] = {}
        self.edges: dict[str, set[str]] = {}

    @classmethod
    def build(cls, project: "ProjectContext") -> "CallGraph":
        graph = cls(ModuleTable.build(project))
        for name in sorted(graph.table.modules):
            module = graph.table.modules[name]
            for fn in sorted(module.functions.values(),
                             key=lambda f: f.qualname):
                graph._add_function(module, fn)
            for cls_info in sorted(module.classes.values(),
                                   key=lambda c: c.qualname):
                for method in sorted(cls_info.methods.values(),
                                     key=lambda f: f.qualname):
                    graph._add_function(module, method)
        return graph

    # -- queries ---------------------------------------------------------

    def function(self, qualname: str) -> FunctionInfo | None:
        return self.functions.get(qualname)

    def functions_named(self, name: str,
                        path_suffix: str | None = None) -> list[FunctionInfo]:
        """Functions with a given bare name, optionally filtered by file."""
        return [
            fn for qual, fn in sorted(self.functions.items())
            if fn.name == name
            and (path_suffix is None or fn.ctx.matches(path_suffix))
        ]

    def callees(self, qualname: str) -> tuple[str, ...]:
        return tuple(sorted(self.edges.get(qualname, ())))

    def reachable_from(self, roots: Iterable[str]) -> list[FunctionInfo]:
        """Every function reachable from ``roots`` (roots included), sorted."""
        seen: set[str] = set()
        stack = sorted(set(roots))
        while stack:
            qual = stack.pop()
            if qual in seen or qual not in self.functions:
                continue
            seen.add(qual)
            stack.extend(self.edges.get(qual, ()))
        return [self.functions[q] for q in sorted(seen)]

    # -- construction ----------------------------------------------------

    def _add_function(self, module: ModuleInfo, fn: FunctionInfo) -> None:
        self.functions[fn.qualname] = fn
        edges = self.edges.setdefault(fn.qualname, set())
        param_types = self._param_types(module, fn)
        local_types = dict(param_types)
        body = fn.node.body if hasattr(fn.node, "body") else [fn.node]

        for stmt in body if isinstance(body, list) else [body]:
            for node in ast.walk(stmt):
                if isinstance(node, _FUNC_NODES) and node is not fn.node:
                    # A nested def: model "defined here" as "may run here"
                    # (closures escape through returns and callbacks).
                    nested = FunctionInfo(
                        f"{fn.qualname}.<locals>.{node.name}",
                        fn.module, fn.ctx, node, cls=fn.cls,
                    )
                    if nested.qualname not in self.functions:
                        self._add_function(module, nested)
                    edges.add(nested.qualname)
                elif isinstance(node, ast.Lambda):
                    nested = FunctionInfo(
                        f"{fn.qualname}.<locals>.<lambda:L{node.lineno}>",
                        fn.module, fn.ctx, node, cls=fn.cls,
                    )
                    if nested.qualname not in self.functions:
                        self._add_function(module, nested)
                    edges.add(nested.qualname)
                elif isinstance(node, ast.Assign):
                    self._track_local_type(module, node, local_types)
                elif isinstance(node, ast.Call):
                    self._add_call_edges(module, fn, node, local_types, edges)

    def _param_types(self, module: ModuleInfo,
                     fn: FunctionInfo) -> dict[str, ClassInfo]:
        """Annotated parameters resolved to linted classes."""
        types: dict[str, ClassInfo] = {}
        args_node = getattr(fn.node, "args", None)
        if args_node is None:
            return types
        for arg in (args_node.posonlyargs + args_node.args
                    + args_node.kwonlyargs):
            annotation = arg.annotation
            if annotation is None:
                continue
            if (isinstance(annotation, ast.Constant)
                    and isinstance(annotation.value, str)):
                dotted = annotation.value.strip().split("|")[0].strip()
            else:
                dotted = _dotted(annotation)
            if dotted:
                resolved = self.table.resolve_class(dotted, module)
                if resolved is not None:
                    types[arg.arg] = resolved
        return types

    def _track_local_type(self, module: ModuleInfo, node: ast.Assign,
                          local_types: dict[str, ClassInfo]) -> None:
        """``x = ClassName(...)`` gives ``x`` a resolvable type."""
        if not (isinstance(node.value, ast.Call) and len(node.targets) == 1):
            return
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            return
        dotted = _dotted(node.value.func)
        if dotted is None:
            return
        resolved = self.table.resolve_class(dotted, module)
        if resolved is not None:
            local_types[target.id] = resolved

    def _add_call_edges(self, module: ModuleInfo, fn: FunctionInfo,
                        call: ast.Call, local_types: dict[str, ClassInfo],
                        edges: set[str]) -> None:
        target = self._resolve_callee(module, fn, call.func, local_types)
        if target is not None:
            edges.add(target)
        # A function *referenced* in an argument (``pool.submit(worker,
        # cell)``, ``initializer=_worker_init``) may be called by the
        # receiver; treat the reference as a call for reachability.
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            if isinstance(arg, (ast.Name, ast.Attribute)):
                referenced = self._resolve_callee(
                    module, fn, arg, local_types
                )
                if referenced is not None:
                    edges.add(referenced)

    def _resolve_callee(self, module: ModuleInfo, fn: FunctionInfo,
                        func: ast.AST,
                        local_types: dict[str, ClassInfo]) -> str | None:
        dotted = _dotted(func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")

        if not rest:
            # Bare name: local function, imported function, or constructor.
            local = module.functions.get(head)
            if local is not None:
                return local.qualname
            cls_info = self.table.resolve_class(head, module)
            if cls_info is not None:
                init = cls_info.methods.get("__init__")
                return init.qualname if init is not None else None
            origin = module.import_froms.get(head)
            if origin is not None:
                target = self.table.resolve_module(origin[0], module)
                if target is not None:
                    imported = target.functions.get(origin[1])
                    if imported is not None:
                        return imported.qualname
            return None

        if head in ("self", "cls") and fn.cls is not None:
            return self._resolve_method(
                module.classes.get(fn.cls), rest, module
            )
        bound = local_types.get(head)
        if bound is not None:
            return self._resolve_method(bound, rest, module)
        # ``ClassName.method`` (e.g. ``Cell.make``).
        cls_info = self.table.resolve_class(head, module)
        if cls_info is not None:
            return self._resolve_method(cls_info, rest, module)
        # ``module.path.func``: strip the trailing attribute, resolve the
        # rest as a module value.
        mod_part, _, attr = dotted.rpartition(".")
        target = self.table._resolve_value_module(mod_part, module)
        if target is not None:
            imported = target.functions.get(attr)
            if imported is not None:
                return imported.qualname
            cls_info = target.classes.get(attr)
            if cls_info is not None:
                init = cls_info.methods.get("__init__")
                return init.qualname if init is not None else None
        return None

    def _resolve_method(self, cls_info: ClassInfo | None, rest: str,
                        module: ModuleInfo,
                        _depth: int = 0) -> str | None:
        """Resolve ``<attr chain>`` against a class, walking bases."""
        if cls_info is None or _depth > 8:
            return None
        name = rest.split(".", 1)[0]
        method = cls_info.methods.get(name)
        if method is not None:
            return method.qualname
        owner = self.table.modules.get(cls_info.module, module)
        for base in cls_info.bases:
            base_info = self.table.resolve_class(base, owner)
            if base_info is not None:
                found = self._resolve_method(
                    base_info, rest, owner, _depth + 1
                )
                if found is not None:
                    return found
        return None


def iter_calls(tree: ast.AST) -> Iterator[ast.Call]:
    """All call nodes of a tree, in source order."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node
