"""Shared machinery for the provenance rule family (analysis layer 5).

The KEY/ENV/ATM rules of :mod:`repro.lint.rules.provenance` all answer
questions about *where results come from*: which configuration values
reach the result-cache key, which environment variables the package
reads, and which writes can leave a torn artifact behind.  This module
holds the reusable pieces, built on the symbol table and call graph of
:mod:`repro.lint.graph`:

* declaration parsing — dataclass fields, ``self.<knob>`` assignments
  in an ``__init__``, literal string-keyed contract dicts
  (``ENV_KNOBS``, ``_KEY_EXEMPT``), and string constants resolved
  through module-level assignments and imports;
* read collection — every ``<receiver>.<attr>`` read in a function
  body, and the intra-class closure of a method (the other methods it
  reaches through ``self``), which is how "flows into the key" is
  defined;
* write classification — raw file-write calls (``open`` in a write
  mode, ``os.fdopen``, ``Path.write_text``/``write_bytes``) and
  ``os.path.exists``-style guards, the ingredients of the ATM rules;
* environment-read classification — inline ``os.environ``/``os.getenv``
  uses versus calls to the typed accessors of :mod:`repro.utils.env`.

Everything operates on linted ASTs only, deterministic and
side-effect-free, like the rest of the lint layers.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.lint.graph import ClassInfo, FunctionInfo, ModuleInfo, ModuleTable, _dotted

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.engine import FileContext

__all__ = [
    "ACCESSOR_PARSERS",
    "accessor_calls",
    "attribute_reads",
    "dataclass_fields",
    "exists_guarded_writes",
    "find_class",
    "init_knobs",
    "inline_env_reads",
    "literal_str_dict",
    "method_closure",
    "module_for",
    "non_self_params",
    "raw_write_calls",
    "resolve_str_constant",
]

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


# -- declarations --------------------------------------------------------


def module_for(table: ModuleTable, ctx: "FileContext") -> ModuleInfo | None:
    """The table record of a linted file (by identity, then by path)."""
    for info in table.modules.values():
        if info.ctx is ctx or info.ctx.path == ctx.path:
            return info
    return None


def find_class(
    table: ModuleTable, name: str, path_suffix: str | None = None
) -> ClassInfo | None:
    """A class by bare name, preferring files matching ``path_suffix``.

    The suffix preference keeps a fixture tree's ``ExperimentContext``
    from shadowing the real one when both are linted together; when no
    module matches the suffix, the first (sorted) definition wins.
    """
    fallback: ClassInfo | None = None
    for mod_name in sorted(table.modules):
        module = table.modules[mod_name]
        cls_info = module.classes.get(name)
        if cls_info is None:
            continue
        if path_suffix is not None and module.ctx.matches(path_suffix):
            return cls_info
        if fallback is None:
            fallback = cls_info
    return fallback


def dataclass_fields(cls_info: ClassInfo) -> dict[str, ast.AnnAssign]:
    """Public annotated fields declared in a (dataclass-style) body."""
    fields: dict[str, ast.AnnAssign] = {}
    for stmt in cls_info.node.body:
        if (isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and not stmt.target.id.startswith("_")):
            fields[stmt.target.id] = stmt
    return fields


def init_knobs(cls_info: ClassInfo) -> dict[str, ast.Attribute]:
    """Public ``self.<name> = ...`` bindings made by ``__init__``.

    Underscore names are excluded by convention: they are memo tables
    and other derived state, not configuration.
    """
    init = cls_info.methods.get("__init__")
    knobs: dict[str, ast.Attribute] = {}
    if init is None:
        return knobs
    for node in ast.walk(init.node):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        for target in targets:
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and not target.attr.startswith("_")):
                knobs.setdefault(target.attr, target)
    return knobs


def literal_str_dict(
    expr: ast.expr | None,
) -> dict[str, tuple[ast.expr, ast.expr]] | None:
    """A literal dict with constant string keys, as ``{key: (key_node,
    value_node)}`` — or None when ``expr`` is not such a dict."""
    if not isinstance(expr, ast.Dict):
        return None
    out: dict[str, tuple[ast.expr, ast.expr]] = {}
    for key, value in zip(expr.keys, expr.values):
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            out[key.value] = (key, value)
    return out


def resolve_str_constant(
    expr: ast.expr,
    module: ModuleInfo,
    table: ModuleTable,
    _depth: int = 0,
) -> str | None:
    """Resolve an expression to a string constant, following names.

    Handles literals, module-level ``NAME = "..."`` assignments, and
    names imported from other linted modules (``from repro.runner.cache
    import ENV_CACHE_DIR``) — the shapes the env-knob call sites use.
    """
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value
    if _depth > 4 or not isinstance(expr, ast.Name):
        return None
    local = module.assigns.get(expr.id)
    if local is not None:
        return resolve_str_constant(local, module, table, _depth + 1)
    origin = module.import_froms.get(expr.id)
    if origin is not None:
        target = table.resolve_module(origin[0], module)
        if target is not None:
            remote = target.assigns.get(origin[1])
            if remote is not None:
                return resolve_str_constant(remote, target, table, _depth + 1)
    return None


# -- reads ---------------------------------------------------------------


def attribute_reads(
    node: ast.AST, receivers: frozenset[str] | set[str] | None = None
) -> dict[tuple[str, str], ast.Attribute]:
    """``(receiver, attr)`` pairs read anywhere under ``node``.

    Only attributes whose base is a plain name are collected; with
    ``receivers=None`` every base name counts (the over-approximation
    the influence scan wants), otherwise only the given names.  Chained
    accesses like ``self.shift_policy.value`` surface the inner
    ``(self, shift_policy)`` read.
    """
    reads: dict[tuple[str, str], ast.Attribute] = {}
    for child in ast.walk(node):
        if (isinstance(child, ast.Attribute)
                and isinstance(child.value, ast.Name)):
            base = child.value.id
            if receivers is None or base in receivers:
                reads.setdefault((base, child.attr), child)
    return reads


def method_closure(cls_info: ClassInfo, method_name: str) -> list[FunctionInfo]:
    """A method plus every same-class method it reaches via ``self``.

    This is the "key path" of KEY001: an attribute read anywhere in
    ``key_fields`` or a helper it calls (``self._profile_digests(ctx)``)
    counts as flowing into the key.
    """
    start = cls_info.methods.get(method_name)
    if start is None:
        return []
    closure = [start]
    seen = {method_name}
    queue = [start]
    while queue:
        fn = queue.pop()
        for node in ast.walk(fn.node):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in ("self", "cls")):
                callee = cls_info.methods.get(node.func.attr)
                if callee is not None and node.func.attr not in seen:
                    seen.add(node.func.attr)
                    closure.append(callee)
                    queue.append(callee)
    return closure


def non_self_params(fn: FunctionInfo) -> set[str]:
    """Parameter names of a method, minus the ``self``/``cls`` receiver."""
    args = getattr(fn.node, "args", None)
    if args is None:
        return set()
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    return {n for n in names if n not in ("self", "cls")}


# -- environment reads ---------------------------------------------------

#: The typed accessors of :mod:`repro.utils.env`, with the parser kind
#: each one implies (matched against the ENV_KNOBS declaration).
ACCESSOR_PARSERS = {"env_str": "str", "env_int": "int", "env_float": "float"}

_ENV_DOTTED = frozenset({"os.environ", "os.getenv"})


def inline_env_reads(module: ModuleInfo) -> list[ast.AST]:
    """Raw ``os.environ``/``os.getenv`` uses (including ``from os
    import environ`` aliases) anywhere in a module."""
    aliases = {
        local for local, (mod, name) in module.import_froms.items()
        if mod == "os" and name in ("environ", "getenv")
    }
    found: list[ast.AST] = []
    for node in ast.walk(module.ctx.tree):
        if isinstance(node, ast.Attribute):
            if _dotted(node) in _ENV_DOTTED:
                found.append(node)
        elif (isinstance(node, ast.Name) and node.id in aliases
                and isinstance(node.ctx, ast.Load)):
            found.append(node)
    return sorted(found, key=lambda n: (n.lineno, n.col_offset))


def accessor_calls(module: ModuleInfo) -> Iterator[tuple[str, ast.Call]]:
    """Calls to the :mod:`repro.utils.env` accessors, as
    ``(parser_kind, call)`` pairs.

    An accessor is recognized by import provenance, not bare name: the
    called name must be imported from a module whose last path
    component is ``env`` and resolve to one of
    :data:`ACCESSOR_PARSERS` — so a fixture's local ``env_int`` helper
    that is *not* the seam does not masquerade as one.
    """
    for node in ast.walk(module.ctx.tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)):
            continue
        origin = module.import_froms.get(node.func.id)
        if origin is None:
            continue
        source, original = origin
        if original in ACCESSOR_PARSERS and source.split(".")[-1] == "env":
            yield ACCESSOR_PARSERS[original], node


# -- writes --------------------------------------------------------------

_WRITE_MODE_CHARS = frozenset("wax+")


def _mode_opens_for_write(call: ast.Call, mode_index: int) -> bool:
    """Whether an ``open``-style call's mode argument writes.

    A non-constant mode in a store module is treated as a write: the
    rule's question is "can this leave a torn file", and an unknowable
    mode cannot prove it can't.
    """
    mode: ast.expr | None = None
    if len(call.args) > mode_index:
        mode = call.args[mode_index]
    else:
        for kw in call.keywords:
            if kw.arg == "mode":
                mode = kw.value
    if mode is None:
        return False  # default mode is "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return any(c in _WRITE_MODE_CHARS for c in mode.value)
    return True


def _write_call_description(node: ast.Call) -> str | None:
    """Classify one call as a raw file write (description), or None."""
    dotted = _dotted(node.func)
    if dotted in ("open", "io.open") and _mode_opens_for_write(node, 1):
        return f"{dotted}(...) in a write mode"
    if dotted == "os.fdopen" and _mode_opens_for_write(node, 1):
        return "os.fdopen(...) in a write mode"
    if (isinstance(node.func, ast.Attribute)
            and node.func.attr in ("write_text", "write_bytes")):
        return f".{node.func.attr}(...)"
    return None


def raw_write_calls(tree: ast.AST) -> Iterator[tuple[ast.Call, str]]:
    """Raw file-write call sites, with a short description of each."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            description = _write_call_description(node)
            if description is not None:
                yield node, description


_EXISTS_DOTTED = frozenset({"os.path.exists", "os.path.isfile", "os.path.isdir"})
_EXISTS_METHODS = frozenset({"exists", "is_file", "is_dir"})


def _has_exists_test(test: ast.expr) -> bool:
    for node in ast.walk(test):
        if not isinstance(node, ast.Call):
            continue
        if _dotted(node.func) in _EXISTS_DOTTED:
            return True
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in _EXISTS_METHODS):
            return True
    return False


def _makedirs_without_exist_ok(node: ast.AST) -> bool:
    if not (isinstance(node, ast.Call)
            and _dotted(node.func) in ("os.makedirs", "os.mkdir")):
        return False
    for kw in node.keywords:
        if (kw.arg == "exist_ok" and isinstance(kw.value, ast.Constant)
                and kw.value.value is True):
            return False
    return True


def exists_guarded_writes(tree: ast.AST) -> Iterator[tuple[ast.If, str]]:
    """``if <exists-check>: <raw write or makedirs>`` patterns.

    Between the existence test and the write, another process can
    create, replace, or delete the path — the classic TOCTOU race.
    Guarded calls that are *not* raw writes (e.g. an idempotent
    ``generate()`` that itself commits atomically) are deliberately not
    flagged: the race is only harmful when the guarded action can
    observe or produce torn state.
    """
    for node in ast.walk(tree):
        if not (isinstance(node, ast.If) and _has_exists_test(node.test)):
            continue
        description = None
        for stmt in node.body + node.orelse:
            for child in ast.walk(stmt):
                if not isinstance(child, ast.Call):
                    continue
                if _makedirs_without_exist_ok(child):
                    description = "os.makedirs without exist_ok=True"
                else:
                    description = _write_call_description(child)
                if description is not None:
                    break
            if description is not None:
                break
        if description is not None:
            yield node, description
