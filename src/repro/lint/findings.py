"""The :class:`Finding` record produced by every lint rule.

A finding pins one invariant violation to a source location.  Findings
are plain data: rules yield them, the engine filters suppressed ones,
and the reporters render whatever survives.  Keeping the record dumb
means new output formats (SARIF, GitHub annotations) only need a new
reporter, not rule changes.
"""

from __future__ import annotations

import dataclasses
import enum

__all__ = ["Severity", "Finding"]


class Severity(enum.Enum):
    """How bad a violated invariant is for reproduction integrity.

    ``ERROR`` findings mean results can silently diverge from the paper
    (nondeterminism, broken predictor contracts).  ``WARNING`` findings
    mean the code duplicates a checked helper and can drift out of sync
    with it (hand-rolled bit masking).
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    The field order doubles as the sort order: findings group by file,
    then read top to bottom, then by rule id for same-line hits.
    """

    path: str
    line: int
    col: int
    rule: str
    severity: Severity = dataclasses.field(compare=False)
    message: str = dataclasses.field(compare=False)

    def to_dict(self) -> dict:
        """JSON-serializable form (schema checked by tests/test_lint.py)."""
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        """One-line human-readable form, ``path:line:col: RULE: message``."""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} {self.severity.value}: {self.message}")
