"""Hot-region inference: which code runs once per simulated branch.

The fourth analysis layer (after syntax, dataflow, and abstract
interpretation).  The end-to-end throughput gap — fast kernels at
~10M branches/s, experiments at ~1M — lives in the Python code *around*
the kernels, and the PERF rule family needs to know exactly which
functions that is.  This module answers two questions statically:

**Which functions are hot?**  Starting from the per-branch entry points
— ``simulate``/``run_combined``, the kernels ``_KERNELS`` dispatch
table's registered kernel functions, ``from_trace``/``measure_*``/
``profile_*`` profiling passes, and anything decorated ``@hot_path`` —
take everything reachable in the project call graph
(:class:`~repro.lint.graph.CallGraph`).  Roots are reachability
*sources*: a cold driver that merely calls ``simulate`` is not itself
hot.

**Which of their loops are trace-scale?**  A loop that walks a
predictor table is fine; a loop that walks the trace is the bug.  The
trip count's provenance decides: the loop subject (a ``for``'s iterable,
a ``while``'s condition) is sliced back through reaching definitions
(:mod:`repro.lint.dataflow`); if any leaf atom is a trace column
(``site_indices``/``addresses``/``outcomes``/``gaps``), a trace-like
parameter (``trace``, ``n_branches``, ``stream``, ...), the slice is
trace-scale.  Otherwise, if the subject's value range
(:mod:`repro.lint.intervals`) is provably bounded — a table size, a
history width — it is table-scale.  Anything unproven stays
``unknown`` and is *not* flagged: the PERF family requires positive
evidence of trace scale, so kernels helper loops over history windows
never false-positive.

The same region powers ``repro lint --hot-report``: a deterministic
ranked worklist (function, estimated per-branch ops, callers) that
vectorization PRs burn down — ROADMAP's "close the e2e gap" item as a
machine-checked list instead of tribal knowledge.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.lint.dataflow import Atom, ReachingDefinitions, provenance_atoms
from repro.lint.graph import CallGraph, FunctionInfo, ModuleInfo, ModuleTable
from repro.lint.intervals import definition_range

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.engine import ProjectContext

__all__ = [
    "LoopInfo",
    "HotFunction",
    "HotRegion",
    "hot_region",
    "load_project",
    "render_hot_report",
]

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
_LOOP_NODES = (ast.For, ast.AsyncFor, ast.While)

#: Path suffix of the kernels dispatch module and its table name.
KERNELS_SUFFIX = "kernels/__init__.py"
KERNEL_TABLE_NAME = "_KERNELS"

#: The decorator marking a function as per-branch by declaration.
HOT_DECORATOR = "hot_path"

#: Functions with these bare names are per-branch entry points wherever
#: they are defined (the simulator driver API).
ENTRY_POINT_NAMES = ("run_combined", "simulate")

#: Bare-name shapes that make a function under ``profiling/`` an entry
#: point: ``from_trace`` and ``measure_*``/``profile_*`` passes.
PROFILING_NAMES = ("from_trace",)
PROFILING_PREFIXES = ("measure_", "profile_")
PROFILING_FRAGMENT = "profiling/"

#: Parameter names whose value is the trace (or its length).  Narrow on
#: purpose: ``length``, ``outcomes``, ``addresses`` as *parameters* are
#: table/window sizes in kernels helpers and must not match.
TRACE_PARAMS = frozenset({
    "trace", "profile_trace", "measure_trace", "n_branches", "stream",
})

#: Trace column names: an attribute/subscript slice leaf ending in one
#: of these (``trace.addresses``, ``self.gaps``) is trace-sized.
TRACE_COLUMNS = frozenset({
    "site_indices", "addresses", "outcomes", "gaps",
})

#: AST node types counted as one "op" for the per-branch cost estimate.
_OP_NODES = (ast.BinOp, ast.BoolOp, ast.UnaryOp, ast.Compare, ast.Call,
             ast.Subscript, ast.Attribute)


@dataclasses.dataclass(frozen=True)
class LoopInfo:
    """One loop of a hot function, classified by trip-count provenance.

    ``scale`` is ``"trace"`` (iterates once per branch record),
    ``"bounded"`` (trip count provably bounded by table-sized/constant
    data), or ``"unknown"`` (no proof either way; never flagged).
    ``reason`` names the deciding evidence — the trace atom's text, or
    the proven interval.
    """

    node: ast.stmt = dataclasses.field(compare=False)
    scale: str = "unknown"
    reason: str = ""

    @property
    def line(self) -> int:
        return self.node.lineno


@dataclasses.dataclass(frozen=True)
class HotFunction:
    """One function of the hot region, with its classified loops."""

    info: FunctionInfo = dataclasses.field(compare=False)
    reason: str = ""
    loops: tuple[LoopInfo, ...] = ()
    #: Estimated per-branch operations: op-ish AST nodes inside
    #: trace-scale loop bodies (0 when the function is loop-free or all
    #: its loops are table-scale).
    per_branch_ops: int = 0

    @property
    def qualname(self) -> str:
        return self.info.qualname

    def trace_loops(self) -> tuple[LoopInfo, ...]:
        return tuple(l for l in self.loops if l.scale == "trace")


class HotRegion:
    """The per-branch region: hot functions, their callers, the roots."""

    def __init__(self, graph: CallGraph, functions: dict[str, HotFunction],
                 roots: dict[str, str]):
        self.graph = graph
        #: qualname -> HotFunction, for every function in the region.
        self.functions = functions
        #: qualname -> why it is a root (entry point, dispatch, ...).
        self.roots = roots
        #: qualname -> sorted in-region callers (reverse call edges).
        self.callers: dict[str, tuple[str, ...]] = self._reverse_edges()

    def _reverse_edges(self) -> dict[str, tuple[str, ...]]:
        incoming: dict[str, set[str]] = {q: set() for q in self.functions}
        for caller in self.functions:
            for callee in self.graph.edges.get(caller, ()):
                if callee in incoming and callee != caller:
                    incoming[callee].add(caller)
        return {q: tuple(sorted(callers))
                for q, callers in incoming.items()}

    def __contains__(self, qualname: str) -> bool:
        return qualname in self.functions

    def __len__(self) -> int:
        return len(self.functions)

    def members(self) -> list[HotFunction]:
        """Region functions in qualname order (deterministic)."""
        return [self.functions[q] for q in sorted(self.functions)]

    def worklist(self) -> list[HotFunction]:
        """Functions with trace-scale loops, costliest first.

        The ranking is the vectorization worklist: estimated per-branch
        ops descending, qualname ascending as the tie-break, so the
        report is stable across runs and machines.
        """
        hot = [fn for fn in self.members() if fn.trace_loops()]
        return sorted(hot, key=lambda fn: (-fn.per_branch_ops, fn.qualname))


# ---------------------------------------------------------------------------
# Root discovery


def _has_hot_decorator(node: ast.AST) -> bool:
    for decorator in getattr(node, "decorator_list", []):
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == HOT_DECORATOR:
            return True
        if isinstance(target, ast.Attribute) and target.attr == HOT_DECORATOR:
            return True
    return False


def _resolve_function_ref(table: ModuleTable, module: ModuleInfo,
                          expr: ast.expr) -> FunctionInfo | None:
    """Resolve a value expression referencing a function, if possible.

    Covers the shapes the kernels table uses: a bare ``Name`` (local or
    ``from mod import f``) and a ``module.attr`` chain (``import
    dynamic`` style).
    """
    if isinstance(expr, ast.Name):
        local = module.functions.get(expr.id)
        if local is not None:
            return local
        origin = module.import_froms.get(expr.id)
        if origin is not None:
            target = table.resolve_module(origin[0], module)
            if target is not None:
                return target.functions.get(origin[1])
        return None
    if isinstance(expr, ast.Attribute):
        parts: list[str] = []
        node: ast.AST = expr
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        head, attr = ".".join(parts[:-1]), parts[-1]
        target = table._resolve_value_module(head, module)
        if target is not None:
            return target.functions.get(attr)
    return None


def _kernel_table_roots(graph: CallGraph,
                        table_name: str) -> Iterator[tuple[str, str]]:
    """(qualname, reason) for every function the kernels table selects."""
    for module in graph.table.modules.values():
        if not module.ctx.matches(KERNELS_SUFFIX):
            continue
        value = module.assigns.get(table_name)
        if not isinstance(value, ast.Dict):
            continue
        for entry in value.values:
            fn = _resolve_function_ref(graph.table, module, entry)
            if fn is not None:
                yield fn.qualname, f"{table_name} kernels dispatch"


def _discover_roots(graph: CallGraph,
                    extra_roots: tuple[str, ...]) -> dict[str, str]:
    roots: dict[str, str] = {}

    def add(qualname: str, reason: str) -> None:
        roots.setdefault(qualname, reason)

    for name in ENTRY_POINT_NAMES:
        for fn in graph.functions_named(name):
            add(fn.qualname, f"entry point {name}()")
    for qualname, reason in sorted(_kernel_table_roots(graph,
                                                       KERNEL_TABLE_NAME)):
        add(qualname, reason)
    for qualname in sorted(graph.functions):
        fn = graph.functions[qualname]
        if PROFILING_FRAGMENT in fn.ctx.path.as_posix() and (
                fn.name in PROFILING_NAMES
                or fn.name.startswith(PROFILING_PREFIXES)):
            add(qualname, "profiling pass")
        if _has_hot_decorator(fn.node):
            add(qualname, f"@{HOT_DECORATOR}")
    for qualname in extra_roots:
        add(qualname, "extra root")
    return roots


# ---------------------------------------------------------------------------
# Loop classification


def _own_loops(fn_node: ast.AST) -> Iterator[ast.stmt]:
    """Loop statements of one function body, excluding nested defs.

    Nested functions are their own call-graph nodes (``<locals>``
    qualnames), so their loops are classified under the nested function,
    not double-counted here.
    """
    stack: list[ast.AST] = list(ast.iter_child_nodes(fn_node))
    while stack:
        node = stack.pop()
        if isinstance(node, _FUNC_NODES):
            continue
        if isinstance(node, _LOOP_NODES):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _slice_subjects(node: ast.stmt) -> list[ast.expr]:
    """The expressions whose provenance decides a loop's trip count."""
    if isinstance(node, (ast.For, ast.AsyncFor)):
        iterator = node.iter
        # ``for i in range(stop)``: the trip count is the argument, so
        # slice through the range() call — provenance descends into it
        # anyway, but the interval analysis treats calls as opaque.
        if (isinstance(iterator, ast.Call)
                and isinstance(iterator.func, ast.Name)
                and iterator.func.id == "range" and iterator.args):
            return list(iterator.args)
        return [iterator]
    subjects: list[ast.expr] = []
    test = node.test
    # provenance_atoms does not descend into comparisons; a while
    # condition is almost always one, so slice its operands directly.
    if isinstance(test, ast.Compare):
        subjects.append(test.left)
        subjects.extend(test.comparators)
    else:
        subjects.append(test)
    return subjects


def _trace_atom(atom: Atom) -> str | None:
    """The evidence string if ``atom`` is trace-sized, else None."""
    if atom.kind == "parameter" and atom.text in TRACE_PARAMS:
        return f"parameter {atom.text!r}"
    if atom.kind in ("attribute", "subscript") and atom.text:
        if atom.text.split(".")[-1] in TRACE_COLUMNS:
            return f"trace column {atom.text!r}"
    return None


def _classify_loop(node: ast.stmt, defs: ReachingDefinitions,
                   module_assigns: dict[str, ast.expr]) -> LoopInfo:
    subjects = _slice_subjects(node)
    for subject in subjects:
        for atom in provenance_atoms(subject, defs, module_assigns,
                                     use_line=node.lineno):
            evidence = _trace_atom(atom)
            if evidence is not None:
                return LoopInfo(node=node, scale="trace", reason=evidence)
    for subject in subjects:
        interval = definition_range(subject, defs, module_assigns)
        if interval.hi is not None:
            return LoopInfo(node=node, scale="bounded",
                            reason=f"value range {interval.render()}")
    return LoopInfo(node=node)


def _estimate_ops(loops: Iterable[LoopInfo]) -> int:
    """Op-ish AST nodes inside trace-scale loop bodies (nested defs skipped)."""
    total = 0
    for loop in loops:
        if loop.scale != "trace":
            continue
        stack: list[ast.AST] = list(ast.iter_child_nodes(loop.node))
        while stack:
            node = stack.pop()
            if isinstance(node, _FUNC_NODES):
                continue
            if isinstance(node, _OP_NODES):
                total += 1
            stack.extend(ast.iter_child_nodes(node))
    return total


def _analyze_function(graph: CallGraph, fn: FunctionInfo,
                      reason: str) -> HotFunction:
    module = graph.table.modules.get(fn.module)
    module_assigns = module.assigns if module is not None else {}
    defs = ReachingDefinitions(fn.node)
    loops = tuple(
        _classify_loop(node, defs, module_assigns)
        for node in sorted(_own_loops(fn.node), key=lambda n: n.lineno)
    )
    return HotFunction(info=fn, reason=reason, loops=loops,
                       per_branch_ops=_estimate_ops(loops))


# ---------------------------------------------------------------------------
# Region construction


def hot_region(project: "ProjectContext",
               extra_roots: tuple[str, ...] = ()) -> HotRegion:
    """Infer the per-branch hot region of a linted project.

    Memoized on the project context (keyed by ``extra_roots``): the
    PERF rules and the hot report all share one call-graph build per
    lint run.
    """
    cache: dict[tuple[str, ...], HotRegion] = getattr(
        project, "_hot_region_cache", None) or {}
    cached = cache.get(extra_roots)
    if cached is not None:
        return cached

    graph = CallGraph.build(project)
    roots = _discover_roots(graph, extra_roots)
    functions: dict[str, HotFunction] = {}
    for fn in graph.reachable_from(roots):
        reason = roots.get(fn.qualname, "reachable from the hot region")
        functions[fn.qualname] = _analyze_function(graph, fn, reason)
    region = HotRegion(graph, functions, roots)
    cache[extra_roots] = region
    project._hot_region_cache = cache
    return region


def load_project(paths: Iterable) -> "ProjectContext":
    """Parse ``paths`` into a :class:`ProjectContext` (for ``--hot-report``).

    Files that do not parse are skipped — the lint engine proper reports
    those as LINT001; the hot report only ranks what it can analyze.
    """
    # Imported here, not at module level: repro.lint.engine imports the
    # rule registry, which imports rules.perf, which imports this module.
    from repro.lint.engine import (
        FileContext,
        LintEngine,
        ProjectContext,
        collect_files,
    )

    contexts = []
    for path in collect_files(paths):
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError:
            continue
        contexts.append(
            FileContext(path, LintEngine._display(path), source, tree)
        )
    return ProjectContext(contexts)


# ---------------------------------------------------------------------------
# The ranked worklist report


def render_hot_report(region: HotRegion) -> str:
    """The ``--hot-report`` text: ranked trace-scale functions.

    Deterministic by construction: every collection underneath is
    sorted, and ranking ties break on qualname.
    """
    from repro.utils.tables import render_table

    worklist = region.worklist()
    lines = [
        f"hot region: {len(region)} function(s) from "
        f"{len(region.roots)} root(s)",
    ]
    if not worklist:
        lines.append("no trace-scale scalar loops in the hot region")
        return "\n".join(lines)
    rows = []
    for fn in worklist:
        callers = ", ".join(
            q.rsplit(".", 1)[-1] for q in region.callers.get(fn.qualname, ())
        ) or "(root)"
        rows.append([
            fn.qualname,
            fn.per_branch_ops,
            len(fn.trace_loops()),
            callers,
        ])
    lines.append(render_table(
        ["function", "est. ops/branch", "trace loops", "callers"],
        rows, title="vectorization worklist (costliest first)",
    ))
    return "\n".join(lines)
