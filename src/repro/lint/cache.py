"""Content-hash-keyed analysis cache and git ``--changed`` discovery.

Project-wide analysis (the PAR001 call graph walks every linted AST)
costs linear-in-tree time on every invocation; as the tree grows that
turns "lint on save" into "lint on coffee break".  Two mechanisms keep
warm runs cheap, both keyed on *content*, never on mtimes:

**Per-file entries** cache each file's file-rule findings under
``(sha256 of source, rule signature)``.  Editing one module re-analyzes
that module; everything else replays from the cache.  Project rules
cannot be cached per file (their input is the whole set), so:

**A full-set entry** caches the complete, post-suppression finding list
under the hash of every file's content hash plus the rule signature.
A fully warm run — same files, same bytes, same rules — replays the
entire result without parsing a single file.

The *rule signature* folds in the sorted rule ids **and**
:data:`CACHE_FORMAT_VERSION`; bump the version whenever rule or engine
semantics change so stale caches invalidate themselves.  Corrupt or
mismatched cache files are treated as empty, mirroring
:mod:`repro.runner.cache`: a cache must never be able to *cause* a
wrong report.

:func:`git_changed_paths` implements ``repro lint --changed``: the
linted set narrows to ``.py`` files git reports as modified, staged, or
untracked, so pre-commit latency scales with the diff, not the tree.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import LintError
from repro.lint.findings import Finding, Severity
from repro.utils.io import atomic_write_text

__all__ = [
    "AnalysisCache",
    "CACHE_FORMAT_VERSION",
    "DEFAULT_CACHE_PATH",
    "content_hash",
    "rule_signature",
    "git_changed_paths",
]

CACHE_FORMAT_VERSION = 5
DEFAULT_CACHE_PATH = ".repro-lint-cache.json"


def content_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def rule_signature(rule_ids: Iterable[str]) -> str:
    text = json.dumps(
        {"version": CACHE_FORMAT_VERSION, "rules": sorted(rule_ids)}
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _finding_to_dict(finding: Finding) -> dict:
    return finding.to_dict()


def _finding_from_dict(entry: dict) -> Finding:
    return Finding(
        path=entry["path"], line=int(entry["line"]), col=int(entry["col"]),
        rule=entry["rule"], severity=Severity(entry["severity"]),
        message=entry["message"],
    )


class AnalysisCache:
    """One JSON file of per-file and full-set finding entries."""

    def __init__(self, path: str | os.PathLike = DEFAULT_CACHE_PATH):
        self.path = Path(path)
        self.file_hits = 0
        self.file_misses = 0
        self.full_hit = False
        self._data = self._load()

    def _load(self) -> dict:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return {"files": {}, "full": {}}
        if (not isinstance(payload, dict)
                or payload.get("version") != CACHE_FORMAT_VERSION
                or not isinstance(payload.get("files"), dict)
                or not isinstance(payload.get("full"), dict)):
            return {"files": {}, "full": {}}  # stale format: start over
        return {"files": payload["files"], "full": payload["full"]}

    def save(self) -> None:
        """Persist atomically; cache write failures are non-fatal by design
        (the next run just re-analyzes)."""
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "files": self._data["files"],
            "full": self._data["full"],
        }
        try:
            atomic_write_text(os.fspath(self.path),
                              json.dumps(payload, sort_keys=True))
        except OSError:  # pragma: no cover - disk-full/permission paths
            pass

    # -- per-file entries (file-rule findings) ---------------------------

    def _file_key(self, display: str, source_hash: str, signature: str) -> str:
        return f"{display.replace(os.sep, '/')}\x00{source_hash}\x00{signature}"

    def get_file(self, display: str, source_hash: str,
                 signature: str) -> list[Finding] | None:
        entry = self._data["files"].get(
            self._file_key(display, source_hash, signature)
        )
        if entry is None:
            self.file_misses += 1
            return None
        try:
            findings = [_finding_from_dict(e) for e in entry]
        except (KeyError, TypeError, ValueError):
            self.file_misses += 1
            return None  # corrupt entry == miss
        self.file_hits += 1
        return findings

    def put_file(self, display: str, source_hash: str, signature: str,
                 findings: Sequence[Finding]) -> None:
        key = self._file_key(display, source_hash, signature)
        # Drop superseded entries for the same file (older content hashes)
        # so the cache tracks the working tree instead of growing forever.
        prefix = f"{display.replace(os.sep, '/')}\x00"
        stale = [k for k in self._data["files"]
                 if k.startswith(prefix) and k != key]
        for k in stale:
            del self._data["files"][k]
        self._data["files"][key] = [_finding_to_dict(f) for f in findings]

    # -- full-set entry (the complete post-suppression report) -----------

    @staticmethod
    def set_key(file_hashes: Sequence[tuple[str, str]],
                signature: str) -> str:
        text = json.dumps({"files": sorted(file_hashes), "sig": signature})
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def get_full(self, set_key: str) -> list[Finding] | None:
        entry = self._data["full"].get(set_key)
        if entry is None:
            return None
        try:
            findings = [_finding_from_dict(e) for e in entry]
        except (KeyError, TypeError, ValueError):
            return None
        self.full_hit = True
        return findings

    def put_full(self, set_key: str, findings: Sequence[Finding]) -> None:
        # One full-set entry is enough: it exists to short-circuit the
        # "nothing changed" rerun, not to be a history.
        self._data["full"] = {set_key: [_finding_to_dict(f) for f in findings]}


def git_changed_paths(
    paths: Sequence[str | os.PathLike],
    repo_root: str | os.PathLike | None = None,
) -> list[Path]:
    """``.py`` files git sees as modified/staged/untracked under ``paths``.

    Paths are resolved and compared as ancestors: ``--changed src/repro``
    keeps exactly the changed files inside ``src/repro``.  The result is
    sorted, so a ``--changed`` run is as deterministic as a full one.
    """
    try:
        proc = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=repo_root, capture_output=True, text=True, check=True,
        )
    except (OSError, subprocess.CalledProcessError) as exc:
        raise LintError(
            f"--changed needs a git checkout: git status failed ({exc})"
        ) from exc
    root = Path(repo_root) if repo_root is not None else Path.cwd()
    scopes = [Path(p).resolve() for p in paths]
    changed: set[Path] = set()
    for line in proc.stdout.splitlines():
        if len(line) < 4 or line[:2] == "D " or line[1] == "D":
            continue  # deletions have nothing left to lint
        raw = line[3:]
        if " -> " in raw:  # rename: lint the destination
            raw = raw.split(" -> ", 1)[1]
        raw = raw.strip().strip('"')
        if not raw.endswith(".py"):
            continue
        path = (root / raw).resolve()
        if not path.is_file():
            continue
        for scope in scopes:
            if scope == path or scope in path.parents:
                changed.add(path)
                break
    return sorted(changed)
