"""Interval abstract domain with symbolic power-of-two bounds.

The WID rule family (:mod:`repro.lint.rules.widths`) proves hardware
bit-width contracts — "this index is in ``[0, table_size)``", "this
counter stays within its declared width" — for predictors whose table
sizes are *unknown* powers of two.  A plain integer-interval domain
cannot express ``[0, entries - 1]`` when ``entries`` is a constructor
parameter, so bounds here are symbolic:

:class:`Pow2Sym`
    An unknown power of two ``2**k`` with ``k >= min_exp``.  Two
    occurrences of the same symbol denote the *same* runtime value, which
    is what lets the checker conclude ``x & (entries - 1) < entries``.
:class:`Bound`
    ``off`` (a constant), or ``2**(k + shift) + off`` for a symbol.  The
    ``shift`` generalization is what relates a counter's saturation
    ceiling ``2**bits - 1`` to its taken-threshold ``2**(bits-1)``: both
    are bounds over the same symbol, at shifts 0 and -1.
:class:`Interval`
    ``[lo, hi]`` over optional bounds (``None`` = unbounded), plus an
    optional *token* identifying the exact runtime value the interval
    describes.  Tokens are how ``(1 << n) - 1`` and ``bit_mask(n)``
    computed from the same ``n`` unify to the same symbolic mask.

Everything is deliberately a *may*-analysis over-approximation: every
operation returns an interval containing all concretely reachable
results (the property tests in ``tests/test_lint_widths.py`` randomize
expression trees to check exactly this), and every comparison helper
(:func:`bound_le`) answers "provable for **all** admissible symbol
values", so a ``True`` from the checker is a proof and a ``False`` is
only "could not prove".

:func:`definition_range` is the bridge to the reaching-definitions
infrastructure (:mod:`repro.lint.dataflow`): it evaluates an expression
to an interval by chasing names through their definitions, which is how
WID004 proves a modulo operand is a power of two without executing any
code.
"""

from __future__ import annotations

import ast
import dataclasses

from repro.lint.dataflow import ReachingDefinitions

__all__ = [
    "Pow2Sym",
    "Bound",
    "Interval",
    "TOP",
    "BOOL",
    "bound_le",
    "bound_add",
    "bound_sub",
    "bound_shl",
    "binop",
    "unop",
    "iv_min",
    "iv_max",
    "definition_range",
    "is_exact_pow2",
]


class Pow2Sym:
    """An unknown power of two ``2**k`` with ``k >= min_exp``.

    Identity is object identity: analyses intern symbols by a key of
    their choosing so that two mentions of "the table size" compare
    equal.  ``min_exp`` only ever grows (constructor postconditions like
    ``CounterTable``'s ``bits >= 1`` raise it), which keeps every
    previously proved ``<=`` valid.
    """

    __slots__ = ("key", "label", "min_exp")

    def __init__(self, key: tuple, label: str, min_exp: int = 0):
        self.key = key
        self.label = label
        self.min_exp = min_exp

    def require_min_exp(self, exp: int) -> None:
        self.min_exp = max(self.min_exp, exp)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Pow2Sym {self.label} >=2**{self.min_exp}>"


@dataclasses.dataclass(frozen=True)
class Bound:
    """``off``, or ``2**(k + shift) + off`` where ``2**k`` is ``sym``."""

    off: int = 0
    sym: Pow2Sym | None = None
    shift: int = 0

    @property
    def is_const(self) -> bool:
        return self.sym is None

    def add_const(self, c: int) -> "Bound":
        return Bound(self.off + c, self.sym, self.shift)

    def render(self) -> str:
        if self.sym is None:
            return str(self.off)
        base = self.sym.label
        if self.shift > 0:
            base = f"{base}*{1 << self.shift}"
        elif self.shift < 0:
            base = f"{base}/{1 << -self.shift}"
        if self.off > 0:
            return f"{base}+{self.off}"
        if self.off < 0:
            return f"{base}{self.off}"
        return base

    def value(self, exponents: dict | None = None) -> int:
        """Concrete value under an exponent assignment (for tests)."""
        if self.sym is None:
            return self.off
        k = (exponents or {})[self.sym.key]
        exp = k + self.shift
        if exp < 0:
            raise ValueError(f"negative effective exponent {exp}")
        return (1 << exp) + self.off


ZERO = Bound(0)
ONE = Bound(1)


def bound_le(a: Bound, b: Bound) -> bool:
    """Is ``a <= b`` provable for every admissible symbol value?"""
    if a.sym is None and b.sym is None:
        return a.off <= b.off
    if a.sym is not None and b.sym is not None:
        if a.sym is not b.sym:
            return False
        d = b.shift - a.shift
        if d < 0:
            return False
        if d == 0:
            return a.off <= b.off
        # 2**(k+s) + a.off <= 2**(k+s+d) + b.off for all k >= min_exp
        # iff a.off - b.off <= (2**d - 1) * 2**(k+s), minimized at
        # k = min_exp.
        diff = a.off - b.off
        if diff <= 0:
            return True
        m = a.sym.min_exp + a.shift
        if m < 0:
            return False
        return diff <= ((1 << d) - 1) * (1 << m)
    if a.sym is None:
        # const <= 2**(k + shift) + off, minimized at k = min_exp.
        m = b.sym.min_exp + b.shift
        if m >= 0:
            return a.off <= (1 << m) + b.off
        return a.off <= b.off  # 2**m > 0 even for fractional m
    # symbolic <= const: the symbol is unbounded above.
    return False


def bound_add(a: Bound, b: Bound) -> Bound | None:
    """``a + b`` when representable, else ``None`` (unbounded)."""
    if a.sym is None:
        return Bound(a.off + b.off, b.sym, b.shift)
    if b.sym is None:
        return Bound(a.off + b.off, a.sym, a.shift)
    if a.sym is b.sym and a.shift == b.shift:
        return Bound(a.off + b.off, a.sym, a.shift + 1)
    return None


def bound_sub(a: Bound, b: Bound) -> Bound | None:
    """``a - b`` when representable, else ``None``."""
    if b.sym is None:
        return Bound(a.off - b.off, a.sym, a.shift)
    if a.sym is b.sym:
        if a.shift == b.shift:
            return Bound(a.off - b.off)
        if a.shift == b.shift + 1:
            # 2**(m+1) - 2**m = 2**m
            return Bound(a.off - b.off, a.sym, b.shift)
    return None


def bound_shl(a: Bound, c: int) -> Bound:
    """``a << c`` for a constant shift ``c >= 0`` (exact)."""
    return Bound(a.off << c, a.sym, a.shift + c)


def _bound_min(a: Bound | None, b: Bound | None) -> Bound | None:
    """A provable lower bound for ``min(a, b)`` (None = unbounded)."""
    if a is None or b is None:
        return None
    if bound_le(a, b):
        return a
    if bound_le(b, a):
        return b
    return None


def _bound_max(a: Bound | None, b: Bound | None) -> Bound | None:
    """A provable upper bound for ``max(a, b)`` (None = unbounded)."""
    if a is None or b is None:
        return None
    if bound_le(a, b):
        return b
    if bound_le(b, a):
        return a
    return None


def _tighter_hi(a: Bound | None, b: Bound | None) -> Bound | None:
    """Either valid upper bound, preferring the provably tighter one."""
    if a is None:
        return b
    if b is None:
        return a
    return a if bound_le(a, b) else b


@dataclasses.dataclass(frozen=True)
class Interval:
    """``[lo, hi]`` over optional symbolic bounds.

    ``token`` (when set) names the exact runtime value this interval
    describes, so that independently evaluated expressions over the same
    variable can unify; any arithmetic drops it.
    """

    lo: Bound | None = None
    hi: Bound | None = None
    token: tuple | None = None

    @classmethod
    def const(cls, c: int) -> "Interval":
        b = Bound(int(c))
        return cls(b, b)

    @classmethod
    def of_bound(cls, b: Bound) -> "Interval":
        return cls(b, b)

    @classmethod
    def range(cls, lo: int | None, hi: int | None) -> "Interval":
        return cls(None if lo is None else Bound(lo),
                   None if hi is None else Bound(hi))

    @property
    def nonneg(self) -> bool:
        return self.lo is not None and bound_le(ZERO, self.lo)

    @property
    def is_singleton(self) -> bool:
        return self.lo is not None and self.lo == self.hi

    def with_token(self, token: tuple | None) -> "Interval":
        return dataclasses.replace(self, token=token)

    def join(self, other: "Interval") -> "Interval":
        token = self.token if self.token == other.token else None
        return Interval(_bound_min(self.lo, other.lo),
                        _bound_max(self.hi, other.hi), token)

    def clamp_lo(self, bound: Bound) -> "Interval":
        """Refine: the value is additionally known to be ``>= bound``."""
        if self.lo is None or bound_le(self.lo, bound):
            return dataclasses.replace(self, lo=bound)
        return self

    def clamp_hi(self, bound: Bound) -> "Interval":
        """Refine: the value is additionally known to be ``<= bound``."""
        if self.hi is None or bound_le(bound, self.hi):
            return dataclasses.replace(self, hi=bound)
        return self

    def contains(self, value: int, exponents: dict | None = None) -> bool:
        """Concrete membership test (used by the property tests)."""
        if self.lo is not None and self.lo.value(exponents) > value:
            return False
        if self.hi is not None and self.hi.value(exponents) < value:
            return False
        return True

    def render(self) -> str:
        lo = "-inf" if self.lo is None else self.lo.render()
        hi = "+inf" if self.hi is None else self.hi.render()
        return f"[{lo}, {hi}]"


TOP = Interval()
BOOL = Interval.range(0, 1)


def iv_min(a: Interval, b: Interval) -> Interval:
    """Sound interval for ``min(a, b)``.

    Either operand's upper bound is a valid upper bound for the min, so
    the provably tighter one is kept even when the lower bounds are not
    comparable.
    """
    return Interval(_bound_min(a.lo, b.lo), _tighter_hi(a.hi, b.hi))


def iv_max(a: Interval, b: Interval) -> Interval:
    """Sound interval for ``max(a, b)``.

    Either operand's lower bound is a valid lower bound for the max, so
    one is kept even when the two are not provably ordered.
    """
    lo = _bound_max(a.lo, b.lo)
    if lo is None:
        lo = a.lo if a.lo is not None else b.lo
    return Interval(lo, _bound_max(a.hi, b.hi))


def is_exact_pow2(iv: Interval) -> bool:
    """Is the value provably an exact power of two?

    Constants must be ``>= 2`` (flagging a modulo by 1 as "use a mask"
    would suggest ``& 0``); a symbolic ``2**(k + shift)`` qualifies as
    soon as the effective exponent is provably nonnegative.
    """
    if not iv.is_singleton:
        return False
    b = iv.lo
    if b.sym is None:
        return b.off >= 2 and (b.off & (b.off - 1)) == 0
    return b.off == 0 and b.sym.min_exp + b.shift >= 0


def _shift_amount(iv: Interval) -> int | None:
    """The constant value of a provably safe shift amount, else None."""
    if iv.is_singleton and iv.lo.is_const and iv.lo.off >= 0:
        return iv.lo.off
    return None


def binop(op: str, a: Interval, b: Interval) -> Interval:
    """Sound interval result of ``a <op> b`` for integer operands.

    Unknown combinations degrade to :data:`TOP`; the shift and modulo
    cases additionally degrade when the right operand could make the
    concrete operation raise (negative shift, zero modulus), which keeps
    the over-approximation claim vacuously true on those inputs.
    """
    if op == "+":
        return Interval(
            None if a.lo is None or b.lo is None else bound_add(a.lo, b.lo),
            None if a.hi is None or b.hi is None else bound_add(a.hi, b.hi),
        )
    if op == "-":
        return Interval(
            None if a.lo is None or b.hi is None else bound_sub(a.lo, b.hi),
            None if a.hi is None or b.lo is None else bound_sub(a.hi, b.lo),
        )
    if op == "&":
        # AND with a provably nonnegative operand m lands in [0, m]
        # whatever the other side holds (the sign bit of m is clear).
        if a.nonneg and b.nonneg:
            return Interval(ZERO, _tighter_hi(a.hi, b.hi))
        if b.nonneg:
            return Interval(ZERO, b.hi)
        if a.nonneg:
            return Interval(ZERO, a.hi)
        return TOP
    if op in ("|", "^"):
        # For nonnegative x, y: x | y <= x + y and x ^ y <= x + y.
        if a.nonneg and b.nonneg:
            hi = None if a.hi is None or b.hi is None else bound_add(a.hi, b.hi)
            return Interval(ZERO, hi)
        return TOP
    if op == "<<":
        c = _shift_amount(b)
        if c is not None:
            return Interval(
                None if a.lo is None else bound_shl(a.lo, c),
                None if a.hi is None else bound_shl(a.hi, c),
            )
        if (a.is_singleton and a.lo.is_const and a.lo.off == 1
                and b.lo is not None and b.lo.is_const and b.lo.off >= 0
                and b.hi is not None and b.hi.is_const):
            return Interval(Bound(1 << b.lo.off), Bound(1 << b.hi.off))
        if a.nonneg and b.nonneg:
            return Interval(ZERO, None)
        return TOP
    if op == ">>":
        # x >> k <= x for x >= 0, k >= 0; keep the symbolic hi unshifted.
        if a.nonneg and b.nonneg:
            return Interval(ZERO, a.hi)
        return TOP
    if op == "%":
        if b.lo is not None and bound_le(ONE, b.lo):
            return Interval(ZERO,
                            None if b.hi is None else b.hi.add_const(-1))
        return TOP
    if op == "*":
        return _mul(a, b)
    if op == "//":
        return _floordiv(a, b)
    return TOP


def _scale(b: Bound | None, c: int) -> Bound | None:
    """``b * c`` for a constant ``c > 0`` when representable."""
    if b is None:
        return None
    if b.is_const:
        return Bound(b.off * c)
    if c & (c - 1) == 0:  # power of two: exact as a shift
        return bound_shl(b, c.bit_length() - 1)
    return None


def _mul(a: Interval, b: Interval) -> Interval:
    if b.is_singleton and b.lo.is_const:
        a, b = b, a
    if a.is_singleton and a.lo.is_const:
        c = a.lo.off
        if c == 0:
            return Interval.const(0)
        if c > 0:
            return Interval(_scale(b.lo, c), _scale(b.hi, c))
        # negative constant: only the fully constant case stays exact
        lo = Bound(b.hi.off * c) if b.hi is not None and b.hi.is_const else None
        hi = Bound(b.lo.off * c) if b.lo is not None and b.lo.is_const else None
        return Interval(lo, hi)
    if a.nonneg and b.nonneg:
        return Interval(ZERO, None)
    return TOP


def _floordiv(a: Interval, b: Interval) -> Interval:
    if b.is_singleton and b.lo.is_const and b.lo.off >= 1:
        c = b.lo.off
        lo = Bound(a.lo.off // c) if a.lo is not None and a.lo.is_const else (
            ZERO if a.nonneg else None)
        hi: Bound | None = None
        if a.hi is not None:
            if a.hi.is_const:
                hi = Bound(a.hi.off // c)
            elif c & (c - 1) == 0:
                j = c.bit_length() - 1
                # (2**m + off) // 2**j == 2**(m-j) + off // 2**j exactly
                # when m >= j, i.e. when the symbolic part divides out.
                if a.hi.sym.min_exp + a.hi.shift >= j:
                    hi = Bound(a.hi.off >> j, a.hi.sym, a.hi.shift - j)
        return Interval(lo, hi)
    if a.nonneg and b.lo is not None and bound_le(ONE, b.lo):
        return Interval(ZERO, a.hi)
    return TOP


def unop(op: str, a: Interval) -> Interval:
    """Sound interval result of a unary operation."""
    if op == "+":
        return a
    if op == "-":
        return Interval(
            None if a.hi is None or not a.hi.is_const else Bound(-a.hi.off),
            None if a.lo is None or not a.lo.is_const else Bound(-a.lo.off),
        )
    if op == "~":  # ~x == -x - 1
        return binop("-", unop("-", a), Interval.const(1))
    if op == "not":
        return BOOL
    return TOP


_AST_BINOPS = {
    ast.Add: "+", ast.Sub: "-", ast.BitAnd: "&", ast.BitOr: "|",
    ast.BitXor: "^", ast.LShift: "<<", ast.RShift: ">>", ast.Mod: "%",
    ast.Mult: "*", ast.FloorDiv: "//", ast.Pow: "**",
}

_AST_UNOPS = {ast.UAdd: "+", ast.USub: "-", ast.Invert: "~", ast.Not: "not"}

_POW2_MAKERS = ("bit_mask",)


def definition_range(
    expr: ast.expr,
    defs: ReachingDefinitions,
    module_assigns: dict[str, ast.expr] | None = None,
    _syms: dict[str, Pow2Sym] | None = None,
    _depth: int = 0,
    _seen: frozenset | None = None,
) -> Interval:
    """Evaluate an expression to an interval through its definitions.

    Names resolve via :class:`~repro.lint.dataflow.ReachingDefinitions`
    (joining over all reaching bindings), falling back to module-level
    assignments; ``1 << n`` / ``2 ** n`` / ``bit_mask(n)`` over an
    unknown ``n`` produce an exact symbolic power of two keyed by the
    spelled-out operand, which is all WID004 needs to prove "this modulo
    operand is a power of two".  Anything unresolvable is :data:`TOP`.
    """
    module_assigns = module_assigns or {}
    syms = _syms if _syms is not None else {}
    seen = _seen if _seen is not None else frozenset()
    if _depth > 16:
        return TOP

    def recurse(node: ast.expr, seen_next: frozenset = seen) -> Interval:
        return definition_range(node, defs, module_assigns, syms,
                                _depth + 1, seen_next)

    def pow2_of(operand: ast.expr, lo_exp: int) -> Interval:
        iv = recurse(operand)
        if (iv.is_singleton and iv.lo.is_const and iv.lo.off >= 0):
            return Interval.const(1 << iv.lo.off)
        key = ast.unparse(operand)
        sym = syms.get(key)
        if sym is None:
            sym = Pow2Sym(("defrange", key), f"2**{key}", min_exp=lo_exp)
            syms[key] = sym
        if iv.lo is not None and iv.lo.is_const:
            sym.require_min_exp(max(lo_exp, iv.lo.off))
        return Interval.of_bound(Bound(0, sym, 0))

    if isinstance(expr, ast.Constant):
        if isinstance(expr.value, bool):
            return Interval.const(int(expr.value))
        if isinstance(expr.value, int):
            return Interval.const(expr.value)
        return TOP
    if isinstance(expr, ast.Name):
        if expr.id in seen:
            return TOP  # cyclic definition chain
        seen_next = seen | {expr.id}
        if defs.is_local(expr.id):
            result: Interval | None = None
            for definition in defs.definitions(expr.id,
                                               getattr(expr, "lineno", 1)):
                if definition.is_parameter or definition.value is None \
                        or definition.indirect:
                    return TOP
                part = recurse(definition.value, seen_next)
                result = part if result is None else result.join(part)
            return result if result is not None else TOP
        if expr.id in module_assigns:
            return recurse(module_assigns[expr.id], seen_next)
        return TOP
    if isinstance(expr, ast.BinOp):
        op = _AST_BINOPS.get(type(expr.op))
        if op is None:
            return TOP
        if op in ("<<", "**") and isinstance(expr.left, ast.Constant):
            base = expr.left.value
            if op == "<<" and base == 1:
                return pow2_of(expr.right, 0)
            if op == "**" and base == 2:
                return pow2_of(expr.right, 0)
        if op == "**":
            return TOP
        return binop(op, recurse(expr.left), recurse(expr.right))
    if isinstance(expr, ast.UnaryOp):
        op = _AST_UNOPS.get(type(expr.op))
        return unop(op, recurse(expr.operand)) if op else TOP
    if isinstance(expr, ast.Call):
        func = expr.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else "")
        if name in _POW2_MAKERS and len(expr.args) == 1 and not expr.keywords:
            return binop("-", pow2_of(expr.args[0], 0), Interval.const(1))
        if name in ("min", "max") and expr.args and not expr.keywords:
            parts = [recurse(arg) for arg in expr.args]
            result = parts[0]
            for part in parts[1:]:
                result = (iv_min if name == "min" else iv_max)(result, part)
            return result
        return TOP
    if isinstance(expr, ast.IfExp):
        return recurse(expr.body).join(recurse(expr.orelse))
    return TOP
