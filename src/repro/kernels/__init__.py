"""Array-backed fast simulation kernels.

The reference simulation loop in :mod:`repro.core.simulator` calls
``predict``/``update`` once per branch; CPython method dispatch makes
that the throughput ceiling of every experiment.  This package provides
numpy-vectorized kernels for the hot predictor families that replay a
whole :class:`~repro.workloads.trace.BranchTrace` in a handful of array
passes, under one non-negotiable contract:

**A fast kernel is bit-identical to the reference loop.**  Same
misprediction count, same final counter-table state, same history
register, same ``_PREDICT_STATE``.  Kernels are an execution detail,
never an experiment parameter -- which is why the runner's result-cache
keys deliberately exclude the kernel mode.

Dispatch is by exact predictor type (subclasses may override
``predict``/``update``, so they fall back), selected by the
``kernel`` knob on :func:`repro.core.simulator.simulate`:

``"auto"``
    Use a fast kernel when numpy is importable and the predictor has
    one; otherwise run the reference loop.  The default everywhere.
``"fast"``
    Like ``"auto"`` but a missing numpy is a
    :class:`~repro.errors.ConfigurationError` instead of a silent
    fallback.  Predictors with no kernel (combined predictors, gskew,
    ...) still use the reference loop.
``"reference"``
    Always run the per-branch loop (the baseline the differential
    tests and `repro bench` compare against).

numpy is imported lazily inside the kernels so this package -- and the
reference loop -- stay fully functional when numpy is absent.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.kernels import dynamic
from repro.predictors.base import BranchPredictor
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.ghist import GhistPredictor
from repro.predictors.gshare import GsharePredictor
from repro.workloads.trace import BranchTrace

__all__ = [
    "KERNEL_MODES",
    "has_fast_kernel",
    "numpy_available",
    "try_fast_indices",
    "try_fast_predictions",
    "try_fast_simulate",
    "validate_kernel_mode",
]

KERNEL_MODES = ("auto", "fast", "reference")

_KERNELS = {
    BimodalPredictor: dynamic.simulate_bimodal,
    GsharePredictor: dynamic.simulate_gshare,
    GhistPredictor: dynamic.simulate_ghist,
}

_PREDICTION_KERNELS = {
    BimodalPredictor: dynamic.predictions_bimodal,
    GsharePredictor: dynamic.predictions_gshare,
    GhistPredictor: dynamic.predictions_ghist,
}

_INDEX_KERNELS = {
    BimodalPredictor: dynamic.indices_bimodal,
    GsharePredictor: dynamic.indices_gshare,
    GhistPredictor: dynamic.indices_ghist,
}


def numpy_available() -> bool:
    """True when numpy can be imported (cheap after the first call)."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def validate_kernel_mode(kernel: str) -> str:
    """Return ``kernel`` or raise :class:`ConfigurationError`."""
    if kernel not in KERNEL_MODES:
        raise ConfigurationError(
            f"unknown kernel mode {kernel!r}; expected one of "
            + ", ".join(KERNEL_MODES)
        )
    return kernel


def _within_limits(predictor: BranchPredictor, trace: BranchTrace) -> bool:
    """Conservative numeric-headroom guards (see repro.kernels.dynamic)."""
    if len(trace) >= dynamic.MAX_TRACE_LENGTH:
        return False
    if predictor.table.bits > dynamic.MAX_COUNTER_BITS:
        return False
    history = getattr(predictor, "history", None)
    if history is not None and history.length > dynamic.MAX_HISTORY_LENGTH:
        return False
    return True


def has_fast_kernel(predictor: BranchPredictor) -> bool:
    """True when ``predictor`` is exactly a kernel-backed family."""
    return type(predictor) in _KERNELS


def try_fast_simulate(
    trace: BranchTrace,
    predictor: BranchPredictor,
    require: bool = False,
) -> int | None:
    """Replay ``trace`` through a fast kernel, if one applies.

    Returns the misprediction count with the predictor's state advanced
    exactly as the reference loop would have left it, or ``None`` when
    no kernel applies and the caller should run the reference loop.
    With ``require=True`` (the ``kernel="fast"`` knob) a missing numpy
    raises instead of falling back.
    """
    if not numpy_available():
        if require:
            raise ConfigurationError(
                "kernel='fast' requires numpy, which is not importable; "
                "use kernel='auto' to fall back to the reference loop"
            )
        return None
    kernel = _KERNELS.get(type(predictor))
    if kernel is None or not _within_limits(predictor, trace):
        return None
    return kernel(trace, predictor)


def try_fast_predictions(
    trace: BranchTrace,
    predictor: BranchPredictor,
    require: bool = False,
):
    """Replay ``trace``, returning the per-event prediction array.

    The accuracy-profiling twin of :func:`try_fast_simulate`: same
    dispatch, same limit guards, same state-advance contract, but the
    result is a numpy bool array of each event's prediction (compare
    against ``trace.arrays()[1]`` for correctness per branch) instead
    of the misprediction total.  Returns ``None`` when no kernel
    applies and the caller should run the reference loop.
    """
    if not numpy_available():
        if require:
            raise ConfigurationError(
                "kernel='fast' requires numpy, which is not importable; "
                "use kernel='auto' to fall back to the reference loop"
            )
        return None
    kernel = _PREDICTION_KERNELS.get(type(predictor))
    if kernel is None or not _within_limits(predictor, trace):
        return None
    return kernel(trace, predictor)


def try_fast_indices(
    trace: BranchTrace,
    predictor: BranchPredictor,
):
    """Per-event counter-table indices, if a kernel applies.

    The collision-profiling companion of
    :func:`try_fast_predictions`: same dispatch, same limit guards, but
    *pure* -- no predictor state is advanced, so callers that need both
    arrays take the index snapshot first (the history-indexed families
    fold the register's current value into the windows) and then run
    the prediction kernel.  Returns ``None`` when no kernel applies.
    """
    if not numpy_available():
        return None
    kernel = _INDEX_KERNELS.get(type(predictor))
    if kernel is None or not _within_limits(predictor, trace):
        return None
    return kernel(trace, predictor)
