"""Exact segmented scan over saturating-counter state machines.

The sequential semantics of an n-bit saturating counter are
``state' = clip(state + (+1 if taken else -1), 0, max_value)``, so each
trace event acts on its counter as a *clamp-add* map
``s -> clip(s + a, lo, hi)``.  Clamp-add maps are closed under
composition::

    (f2 . f1)(s) = clip(s + a1 + a2,
                        clip(lo1 + a2, lo2, hi2),
                        clip(hi1 + a2, lo2, hi2))

which turns the per-counter state evolution into a prefix *scan* over
map composition rather than an inherently sequential loop.  This module
runs that scan for every counter of a table at once: events are stably
sorted by counter index so each counter's events form one contiguous
segment, then a segmented Hillis-Steele doubling pass composes the maps
in ``O(log longest_segment)`` vectorized rounds.

Two exactness-preserving representation tricks keep the rounds cheap:

* A map's shift may be clamped to ``[-(max_value+1), max_value+1]``
  without changing its action on the counter domain ``[0, max_value]``
  (a shift past either barrier already pins every state to that
  barrier's clip bound).  For hardware-width counters the whole scan
  therefore runs in ``int8``, which keeps the working set L2-resident.
* Cross-segment composition is suppressed *arithmetically* instead of
  with ``numpy.where`` (an order of magnitude slower per round): the
  predecessor map is gated to the identity -- shift 0, clip bounds at
  sentinels ``-big``/``+big`` that the subsequent clip provably
  ignores -- by multiplying with the 0/1 same-segment mask.

The construction is exact, not approximate: the predictions it reports
and the final counter states it writes back are bit-identical to the
reference ``predict``/``update`` loop, including warm (non-initial)
starting states.  ``tests/test_kernels.py`` enforces that contract
differentially against randomized traces.
"""

from __future__ import annotations

__all__ = ["scan_counters"]

_INT8_MAX_VALUE = 31
"""Widest counter the int8 scan holds: values, clamped shifts, and the
gating sentinel (64) must all stay inside ``[-128, 127]``."""


def _sort_key_dtype(numpy, entries: int):
    """Smallest integer dtype holding ``[0, entries)`` index keys.

    numpy's stable sort is a radix sort for 16-bit integers but a
    mergesort above that, an ~8x difference on typical traces; every
    table the paper simulates fits 16-bit keys.
    """
    if entries <= 1 << 15:
        return numpy.int16
    if entries <= 1 << 16:
        return numpy.uint16
    return numpy.int32


def scan_counters(indices, outcomes, base, max_value, threshold):
    """Run every counter of one table through its events, vectorized.

    Parameters
    ----------
    indices:
        Integer array, shape ``(n,)``: the counter index each trace
        event touches, in trace order.  Values must already be masked
        into ``[0, len(base))``.
    outcomes:
        Bool array, shape ``(n,)``: resolved directions (True = taken).
    base:
        ``int32`` array of current counter states; mutated in place to
        the exact post-trace state for every counter that ``indices``
        touches (untouched counters keep their state).
    max_value:
        Saturation ceiling of the table (``2**bits - 1``).
    threshold:
        Counter values ``>= threshold`` predict taken.

    Returns
    -------
    Bool array, shape ``(n,)``, in trace order: the prediction each
    event saw, exactly as the reference loop would have produced it.
    """
    import numpy

    n = indices.shape[0]
    if n == 0:
        return numpy.zeros(0, dtype=numpy.bool_)

    if max_value <= _INT8_MAX_VALUE:
        value_dtype = numpy.int8
        big = 64
    else:
        value_dtype = numpy.int32
        big = 1 << 20
    shift_limit = max_value + 1

    keys = indices.astype(_sort_key_dtype(numpy, base.shape[0]))
    order = numpy.argsort(keys, kind="stable")
    sidx = keys[order]
    staken = outcomes[order]

    # One clamp-add map per event: taken increments, not-taken
    # decrements, both clipped to the counter range.
    a = (staken.view(numpy.int8).astype(value_dtype) << 1) - 1
    lo = numpy.zeros(n, dtype=value_dtype)
    hi = numpy.full(n, max_value, dtype=value_dtype)

    # After the stable sort each distinct counter index owns one
    # contiguous run of events, so sorted keys identify segments.
    seg_start = numpy.empty(n, dtype=numpy.bool_)
    seg_start[0] = True
    numpy.not_equal(sidx[1:], sidx[:-1], out=seg_start[1:])
    bounds = numpy.empty(
        int(numpy.count_nonzero(seg_start)) + 1, dtype=numpy.intp
    )
    bounds[:-1] = numpy.flatnonzero(seg_start)
    bounds[-1] = n
    longest = int(numpy.diff(bounds).max())

    # Segmented Hillis-Steele inclusive scan.  Invariant before the
    # round at distance d: element i's composite covers the most recent
    # min(d, events-before-i-in-segment + 1) events ending at i.
    # Combining with i-d (when still in the same segment) doubles that
    # window; crossing a segment boundary leaves the composite complete.
    d = 1
    while d < longest:
        same = (sidx[d:] == sidx[:-d]).view(numpy.int8)
        ca = a[d:]
        clo = lo[d:]
        chi = hi[d:]
        # Gate the predecessor map to the identity across segment
        # boundaries: shift 0, clip bounds at +-big, which the clip
        # against [clo, chi] then ignores.  Materialize all three
        # composites before writing any of them -- the c* names are
        # views into the arrays being assigned.
        na = numpy.clip(a[:-d] * same + ca, -shift_limit, shift_limit)
        nlo = numpy.minimum(
            numpy.maximum(((lo[:-d] + big) * same - big) + ca, clo), chi
        )
        nhi = numpy.minimum(
            numpy.maximum(((hi[:-d] - big) * same + big) + ca, clo), chi
        )
        a[d:] = na
        lo[d:] = nlo
        hi[d:] = nhi
        d <<= 1

    # Apply each event's prefix composite to its counter's starting
    # state: state *after* event i, then the state the event predicted
    # from (the previous event's after-state, or the base state at the
    # head of the segment).
    sidx_p = sidx.astype(numpy.intp)
    s0 = base.astype(value_dtype)[sidx_p]
    after = numpy.minimum(numpy.maximum(s0 + a, lo), hi)
    before = numpy.empty(n, dtype=value_dtype)
    before[0] = s0[0]
    seg8 = seg_start[1:].view(numpy.int8)
    before[1:] = after[:-1] + (s0[1:] - after[:-1]) * seg8

    predictions = numpy.empty(n, dtype=numpy.bool_)
    predictions[order] = before >= threshold

    ends = bounds[1:] - 1
    base[sidx_p[ends]] = after[ends]
    return predictions
