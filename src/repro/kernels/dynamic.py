"""Whole-trace kernels for the hot dynamic predictors.

Each kernel replays one :class:`~repro.workloads.trace.BranchTrace`
through one predictor family without a per-branch Python loop:

1. the counter index of every event is precomputed as one vectorized
   expression (trace outcomes are known in advance, so the global
   history register's value before each branch is a pure function of
   the preceding outcomes -- see :func:`_history_windows`);
2. the per-counter state evolution runs through the exact segmented
   scan of :mod:`repro.kernels.scan`;
3. the predictor's externally visible state -- counter table, history
   register, ``_PREDICT_STATE`` -- is written back so the predictor is
   indistinguishable from one trained by the reference loop.

Every kernel is bit-identical to the reference ``predict``/``update``
loop by contract (same mispredictions, same final state), including
warm-started predictors.  Callers go through
:func:`repro.kernels.try_fast_simulate`, which performs the type and
limit checks; numpy is imported lazily so the package stays importable
(and the reference loop fully functional) without it.
"""

from __future__ import annotations

from repro.kernels.scan import scan_counters
from repro.utils.bits import ADDRESS_ALIGN_SHIFT, log2_exact

__all__ = [
    "MAX_COUNTER_BITS",
    "MAX_HISTORY_LENGTH",
    "MAX_TRACE_LENGTH",
    "indices_bimodal",
    "indices_ghist",
    "indices_gshare",
    "predictions_bimodal",
    "predictions_ghist",
    "predictions_gshare",
    "simulate_bimodal",
    "simulate_ghist",
    "simulate_gshare",
]

MAX_TRACE_LENGTH = 1 << 30
"""Scan adds are int32; cumulative deltas must stay far from overflow."""

MAX_COUNTER_BITS = 16
"""Counter states must fit int32 alongside the cumulative deltas."""

MAX_HISTORY_LENGTH = 62
"""History windows are built in int64; bit length-1 must stay below 63."""


def _history_windows(outcomes, length, initial):
    """The history register's value *before* each branch, vectorized.

    Register semantics (:class:`~repro.predictors.history.GlobalHistory`):
    bit 0 is the most recent outcome, so before branch ``i`` the
    register holds ``outcome[i-k]`` at bit ``k-1`` for ``k <= length``,
    with bits beyond the start of the trace supplied by ``initial``
    (the warm-start register contents) shifted left ``i`` times.

    Short registers -- every configuration the paper simulates -- are
    built in int32 to halve the memory traffic of the ``length`` shift
    passes.
    """
    import numpy

    dtype = numpy.int32 if length <= 30 else numpy.int64
    n = outcomes.shape[0]
    windows = numpy.zeros(n, dtype=dtype)
    if length == 0 or n == 0:
        return windows
    bits = outcomes.view(numpy.int8).astype(dtype)
    for k in range(1, length + 1):
        if k >= n:
            break
        windows[k:] |= bits[:-k] << (k - 1)
    if initial:
        mask = (1 << length) - 1
        for i in range(min(length, n)):
            contribution = (initial << i) & mask
            if contribution == 0:
                break
            windows[i] |= contribution
    return windows


def _final_history(outcomes, length, initial):
    """The register value after shifting in every outcome of the trace."""
    if length == 0:
        return 0
    mask = (1 << length) - 1
    n = outcomes.shape[0]
    value = initial & mask
    for i in range(max(0, n - length), n):
        value = ((value << 1) | int(outcomes[i])) & mask
    return value


def _table_predictions(predictor, indices, outcomes):
    """Scan the counter table, write all predictor state back.

    Returns the per-event prediction array.  ``indices`` must already
    be masked into the table; the caller has updated any history
    register separately (its evolution does not depend on the table).
    """
    import numpy

    table = predictor.table
    base = table.export_array().astype(numpy.int32)
    predictions = scan_counters(
        indices, outcomes, base, table.max_value, table.threshold
    )
    table.import_array(base)
    n = indices.shape[0]
    if n:
        predictor._last_index = int(indices[n - 1])
    return predictions


def _mispredictions(predictions, outcomes):
    import numpy

    return int(numpy.count_nonzero(predictions != outcomes))


def indices_bimodal(trace, predictor):
    """Per-event counter-table indices for
    :class:`~repro.predictors.bimodal.BimodalPredictor`.

    Pure: no predictor state is read beyond the table geometry and none
    is written, so the collision profiler can take an index snapshot
    before the prediction kernel advances the predictor.
    """
    addresses, _ = trace.arrays()
    return (addresses >> ADDRESS_ALIGN_SHIFT) & predictor.table.mask


def predictions_bimodal(trace, predictor):
    """Per-event predictions for
    :class:`~repro.predictors.bimodal.BimodalPredictor`, state advanced."""
    _, outcomes = trace.arrays()
    return _table_predictions(predictor, indices_bimodal(trace, predictor), outcomes)


def simulate_bimodal(trace, predictor):
    """Fast path for :class:`~repro.predictors.bimodal.BimodalPredictor`."""
    _, outcomes = trace.arrays()
    return _mispredictions(predictions_bimodal(trace, predictor), outcomes)


def _folded_windows(predictor, outcomes):
    """Per-branch history windows, folded into the table's index width.

    Every returned window fits the index mask (an unfolded register is
    at most ``width`` bits; a folded one is masked here, matching the
    reference predictors' mask-after-fold), so gshare's XOR with masked
    address bits needs no re-mask.
    """
    history = predictor.history
    width = log2_exact(predictor.table.entries)
    windows = _history_windows(outcomes, history.length, history.value)
    if history.length > width:
        windows ^= windows >> width
        windows &= predictor.table.mask
    return windows


def indices_gshare(trace, predictor):
    """Per-event counter-table indices for
    :class:`~repro.predictors.gshare.GsharePredictor`.

    Reads the history register's *current* value (the windows are a
    pure function of it plus the trace outcomes) without advancing it,
    so this must run before the prediction kernel imports the final
    history.
    """
    addresses, outcomes = trace.arrays()
    windows = _folded_windows(predictor, outcomes)
    pc = ((addresses >> ADDRESS_ALIGN_SHIFT) & predictor.table.mask).astype(
        windows.dtype
    )
    return pc ^ windows


def predictions_gshare(trace, predictor):
    """Per-event predictions for
    :class:`~repro.predictors.gshare.GsharePredictor`, state advanced."""
    _, outcomes = trace.arrays()
    history = predictor.history
    indices = indices_gshare(trace, predictor)
    predictions = _table_predictions(predictor, indices, outcomes)
    history.import_value(_final_history(outcomes, history.length, history.value))
    return predictions


def simulate_gshare(trace, predictor):
    """Fast path for :class:`~repro.predictors.gshare.GsharePredictor`."""
    _, outcomes = trace.arrays()
    return _mispredictions(predictions_gshare(trace, predictor), outcomes)


def indices_ghist(trace, predictor):
    """Per-event counter-table indices for
    :class:`~repro.predictors.ghist.GhistPredictor`.

    Like :func:`indices_gshare`: reads the current history register,
    never advances it -- call before the prediction kernel.
    """
    _, outcomes = trace.arrays()
    return _folded_windows(predictor, outcomes)


def predictions_ghist(trace, predictor):
    """Per-event predictions for
    :class:`~repro.predictors.ghist.GhistPredictor`, state advanced."""
    _, outcomes = trace.arrays()
    history = predictor.history
    predictions = _table_predictions(predictor, indices_ghist(trace, predictor), outcomes)
    history.import_value(_final_history(outcomes, history.length, history.value))
    return predictions


def simulate_ghist(trace, predictor):
    """Fast path for :class:`~repro.predictors.ghist.GhistPredictor`."""
    _, outcomes = trace.arrays()
    return _mispredictions(predictions_ghist(trace, predictor), outcomes)
