"""Public runner API: experiment-level parallel execution.

Two entry points:

* :func:`execute_cells` -- what every cell-declaring experiment module
  calls from its serial ``run()``; honors the ``REPRO_JOBS`` /
  ``REPRO_CACHE_DIR`` environment knobs so ``repro experiment`` and the
  benchmark harness parallelize transparently, with no caller changes.
* :func:`run_experiments` -- the ``repro run`` engine: resolves each
  experiment id's declared cells, merges and deduplicates them (ids
  sharing configurations pay once), executes them through one
  :class:`~repro.runner.engine.CellExecutor`, then synthesizes every
  report from the shared results.  Experiments that declare no cells
  (pure-profiling tables) fall back to their serial runner.

The registry import is deferred into the function bodies: experiment
modules import this module for :func:`execute_cells`, and the registry
imports the experiment modules, so a module-level import here would be
circular.
"""

from __future__ import annotations

from repro.core.metrics import SimulationResult
from repro.errors import ExperimentError
from repro.experiments.common import ExperimentContext
from repro.experiments.report import ExperimentReport
from repro.runner.cache import ENV_CACHE_DIR, ResultCache
from repro.runner.cells import Cell
from repro.runner.engine import CellExecutor, RunSummary
from repro.utils.env import env_int, env_str

__all__ = ["execute_cells", "run_experiments", "default_jobs"]

ENV_JOBS = "REPRO_JOBS"


def default_jobs() -> int:
    """Worker count used when the caller does not pass one (env knob)."""
    jobs = env_int(ENV_JOBS, 1, error=ExperimentError)
    if jobs < 1:
        raise ExperimentError(f"{ENV_JOBS} must be >= 1, got {jobs}")
    return jobs


def execute_cells(
    ctx: ExperimentContext,
    cells: list[Cell],
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> dict[Cell, SimulationResult]:
    """Execute a cell list for one experiment.

    With no arguments beyond (ctx, cells) this is the serial in-process
    path the experiment runners have always had -- unless ``REPRO_JOBS``
    (worker count) or ``REPRO_CACHE_DIR`` (persistent cache location)
    are set, which upgrade every experiment run in the process, CLI and
    benchmark harness included.
    """
    if jobs is None:
        jobs = default_jobs()
    if cache is None:
        env_dir = env_str(ENV_CACHE_DIR)
        if env_dir:
            cache = ResultCache(env_dir)
    executor = CellExecutor(ctx, jobs=jobs, cache=cache)
    return executor.execute(cells)


def run_experiments(
    experiment_ids: list[str],
    ctx: ExperimentContext | None = None,
    jobs: int = 1,
    cache: ResultCache | None = None,
) -> tuple[dict[str, ExperimentReport], RunSummary]:
    """Run experiments through the parallel runner; reports + summary.

    Cells are collected from every requested id, deduplicated, and
    executed once; each report is then synthesized from the shared
    results.  Ids without declared cells run serially (their work is not
    cell-shaped) and are excluded from the cell accounting.
    """
    from repro.experiments.registry import get_cells, get_experiment, synthesize

    if not experiment_ids:
        raise ExperimentError("no experiment ids given")
    if ctx is None:
        ctx = ExperimentContext()

    cell_lists: dict[str, list[Cell] | None] = {}
    merged: list[Cell] = []
    for experiment_id in experiment_ids:
        cells_fn = get_cells(experiment_id)  # raises on unknown ids
        cells = cells_fn(ctx) if cells_fn is not None else None
        cell_lists[experiment_id] = cells
        if cells:
            merged.extend(cells)

    executor = CellExecutor(ctx, jobs=jobs, cache=cache)
    results = executor.execute(merged) if merged else {}

    reports: dict[str, ExperimentReport] = {}
    for experiment_id in experiment_ids:
        if cell_lists[experiment_id] is None:
            reports[experiment_id] = get_experiment(experiment_id)(ctx)
        else:
            reports[experiment_id] = synthesize(experiment_id, ctx, results)
    return reports, executor.summary
