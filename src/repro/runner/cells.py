"""Experiment cells: the unit of work the parallel runner schedules.

A :class:`Cell` is one ``run_configuration``-shaped simulation -- one
(program, predictor, size, scheme, ...) point of a paper table or
figure.  Experiment modules *declare* their cell lists (pure data, no
simulation) and synthesize reports from the returned
:class:`~repro.core.metrics.SimulationResult`\\ s; the runner decides how
cells execute (inline, process pool, or straight out of the persistent
cache).

Cells are frozen, hashable, and picklable: the same object is the
results-dict key in the parent, the work item shipped to a worker, and
the input to the cache key hash.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.isa import ShiftPolicy
from repro.core.metrics import SimulationResult
from repro.errors import ExperimentError
from repro.experiments.common import ExperimentContext
from repro.profiling.database import ProfileDatabase
from repro.staticpred.hints import HintAssignment
from repro.staticpred.selection import select_static_95

__all__ = ["Cell", "STABLE_SCHEME", "execute_cell", "resolve_hints"]

#: Context knobs that can influence *how* a cell executes but are
#: deliberately excluded from :meth:`Cell.key_fields`, with the
#: justification for each.  This is a machine-checked contract: lint
#: rule KEY001 proves every Cell field and every ``ExperimentContext``
#: knob reachable from :func:`execute_cell` either flows into the cache
#: key or is declared here -- and flags a stale entry whose knob *does*
#: reach the key.  Add to this dict only with a reason a reviewer can
#: audit; an exemption is a claim that two runs differing *only* in
#: that knob are bit-identical.
_KEY_EXEMPT = {
    "kernel": "kernels are bit-identical to the reference loop by "
              "contract (repro.kernels), so the knob changes wall time, "
              "never results",
    "trace_dir": "names *where* pinned artifacts live, not what they "
                 "contain; replay keys fold in the artifacts' content "
                 "digests instead",
}

STABLE_SCHEME = "static_95_stable"
"""Figure 13's bar 4: static_95 over the merged train+ref profile with
unstable (>5% bias change) branches filtered out.  A cell-level scheme
name because the selection input is a *derived* profile, not one of the
raw profiling runs the standard schemes consume."""

#: Schemes whose hint set depends on the simulated dynamic predictor
#: (they run it over the profiling trace), so their cache keys must
#: include the predictor configuration.
_PREDICTOR_DEPENDENT_SCHEMES = frozenset(
    {"static_acc", "static_fac", "static_collision", "static_iter"}
)


@dataclass(frozen=True, slots=True)
class Cell:
    """One experiment cell: a full selection + measurement configuration.

    ``predictor_kwargs`` is a sorted tuple of ``(name, value)`` pairs
    rather than a dict so cells stay hashable; use :meth:`make` to build
    one from keyword arguments.
    """

    program: str
    predictor: str
    size_bytes: int
    scheme: str = "none"
    shift_policy: ShiftPolicy = ShiftPolicy.NO_SHIFT
    measure_input: str = "ref"
    profile_input: str = "ref"
    cutoff: float = 0.95
    factor: float = 1.05
    track_collisions: bool = False
    predictor_kwargs: tuple[tuple[str, object], ...] = field(default=())

    @classmethod
    def make(cls, program: str, predictor: str, size_bytes: int,
             predictor_kwargs: dict | None = None, **kwargs) -> "Cell":
        """Build a cell, normalizing ``predictor_kwargs`` to sorted pairs."""
        pairs = tuple(sorted((predictor_kwargs or {}).items()))
        return cls(program, predictor, size_bytes,
                   predictor_kwargs=pairs, **kwargs)

    @property
    def selection_is_predictor_dependent(self) -> bool:
        """Whether the hint set depends on the dynamic configuration."""
        return self.scheme in _PREDICTOR_DEPENDENT_SCHEMES

    def key_fields(self, ctx: ExperimentContext) -> dict:
        """The complete, ordered cache-key identity of this cell.

        Everything a :class:`~repro.core.metrics.SimulationResult` is a
        function of: the context's root seed, trace length, and site
        scale, plus every cell field.  Any change to any entry must (and
        does) produce a different cache key.  The context's ``kernel``
        knob is deliberately absent: kernels are bit-identical to the
        reference loop by contract (:mod:`repro.kernels`), so it can
        never change a result -- a cache entry written under one kernel
        mode is valid under every other.

        In replay mode (the context pins a trace suite) the content
        digests of every trace the cell consumes -- the measurement
        trace, plus the profiling trace(s) for selecting schemes -- are
        folded in as extra entries, so a pinned-artifact result and a
        regenerated one can never alias in the cache even if the scalar
        knobs coincide.  In regeneration mode the entries are absent and
        existing cache keys are unchanged.
        """
        fields = {
            "seed": ctx.seed,
            "trace_length": ctx.trace_length,
            "site_scale": ctx.site_scale,
            "program": self.program,
            "measure_input": self.measure_input,
            "predictor": self.predictor,
            "size_bytes": self.size_bytes,
            "scheme": self.scheme,
            "shift_policy": self.shift_policy.value,
            "profile_input": self.profile_input,
            "cutoff": self.cutoff,
            "factor": self.factor,
            "track_collisions": self.track_collisions,
            "predictor_kwargs": list(self.predictor_kwargs),
        }
        if ctx.trace_suite is not None:
            fields["trace_digest"] = ctx.trace_digest(
                self.program, self.measure_input
            )
            if self.scheme != "none":
                fields["profile_trace_digest"] = self._profile_digests(ctx)
        return fields

    def _profile_digests(self, ctx: ExperimentContext):
        """Digest(s) of the trace(s) the selection phase profiles.

        The stable-filtered scheme merges the train and ref profiles, so
        its selection identity spans both pinned traces; every other
        scheme profiles exactly ``profile_input``.
        """
        if self.scheme == STABLE_SCHEME:
            return [
                ctx.trace_digest(self.program, "train"),
                ctx.trace_digest(self.program, "ref"),
            ]
        return ctx.trace_digest(self.program, self.profile_input)

    def hint_key_fields(self, ctx: ExperimentContext) -> dict:
        """Cache-key identity of this cell's *selection phase* only.

        Bias-only schemes (``static_95``, the stable-filtered variant)
        share one hint set across every predictor and size, so their key
        deliberately omits the dynamic configuration -- that is what lets
        a gshare cell reuse the selection a 2bcgskew cell already paid
        for.
        """
        fields = {
            "seed": ctx.seed,
            "trace_length": ctx.trace_length,
            "site_scale": ctx.site_scale,
            "program": self.program,
            "scheme": self.scheme,
            "profile_input": self.profile_input,
            "cutoff": self.cutoff,
            "factor": self.factor,
        }
        if self.selection_is_predictor_dependent:
            fields["predictor"] = self.predictor
            fields["size_bytes"] = self.size_bytes
            fields["predictor_kwargs"] = list(self.predictor_kwargs)
        if ctx.trace_suite is not None:
            fields["profile_trace_digest"] = self._profile_digests(ctx)
        return fields


def _stable_hints(ctx: ExperimentContext, cell: Cell) -> HintAssignment:
    """Figure 13 bar 4: merge train+ref profiles, drop unstable branches."""
    database = ProfileDatabase()
    database.record(ctx.profile(cell.program, "train"))
    database.record(ctx.profile(cell.program, "ref"))
    return select_static_95(
        database.stable_filtered(cell.program), cutoff=cell.cutoff
    )


def resolve_hints(ctx: ExperimentContext, cell: Cell, cache=None) -> HintAssignment | None:
    """Run (or fetch) the selection phase for a cell.

    With a :class:`~repro.runner.cache.ResultCache`, the hint database is
    shared across worker processes: the first worker to need a selection
    persists it and every later worker (or run) deserializes instead of
    re-simulating the profiling pass.
    """
    if cell.scheme == "none":
        return None
    if cache is not None:
        cached = cache.get_hints(ctx, cell)
        if cached is not None:
            return cached
    if cell.scheme == STABLE_SCHEME:
        hints = _stable_hints(ctx, cell)
    else:
        hints = ctx.hints(
            cell.program, cell.scheme,
            predictor_name=cell.predictor, size_bytes=cell.size_bytes,
            profile_input=cell.profile_input, cutoff=cell.cutoff,
            factor=cell.factor,
            predictor_kwargs=dict(cell.predictor_kwargs) or None,
        )
    if cache is not None:
        cache.put_hints(ctx, cell, hints)
    return hints


def execute_cell(ctx: ExperimentContext, cell: Cell, cache=None) -> SimulationResult:
    """Execute one cell against a context; pure function of (ctx, cell).

    The result's ``metadata`` records ``static_hint_count`` (how many
    branch sites the selection phase marked static) so report synthesis
    never has to re-run selection in the parent process.
    """
    if not isinstance(cell, Cell):
        raise ExperimentError(f"expected a Cell, got {cell!r}")
    kwargs = dict(cell.predictor_kwargs) or None
    hints = resolve_hints(ctx, cell, cache=cache)
    result = ctx.run(
        cell.program,
        cell.predictor,
        cell.size_bytes,
        scheme=cell.scheme,
        shift_policy=cell.shift_policy,
        measure_input=cell.measure_input,
        profile_input=cell.profile_input,
        track_collisions=cell.track_collisions,
        cutoff=cell.cutoff,
        factor=cell.factor,
        predictor_kwargs=kwargs,
        hints=hints,
    )
    if hints is not None:
        result.metadata["static_hint_count"] = hints.static_count()
    return result
