"""Parallel experiment runner with a persistent result cache.

Every (program, predictor, size, scheme) cell of the paper's tables and
figures is an independent simulation; this package schedules those cells
across worker processes and memoizes their results on disk so re-runs
are incremental:

* :mod:`repro.runner.cells`  -- :class:`Cell` (the declared unit of
  work) and :func:`execute_cell` (its pure executor);
* :mod:`repro.runner.cache`  -- :class:`ResultCache`, content-addressed
  by the full (seed, trace length, site scale, cell) identity;
* :mod:`repro.runner.store`  -- :class:`ShardedResultStore`, the
  sharded, bounded, lock-coordinated storage layer under the cache;
* :mod:`repro.runner.engine` -- :class:`CellExecutor` process pool and
  the :class:`RunSummary` observability record;
* :mod:`repro.runner.api`    -- :func:`execute_cells` (what experiment
  modules call) and :func:`run_experiments` (what ``repro run`` calls).
"""

from repro.runner.api import default_jobs, execute_cells, run_experiments
from repro.runner.cache import CACHE_FORMAT_VERSION, ResultCache, default_cache_dir
from repro.runner.cells import STABLE_SCHEME, Cell, execute_cell, resolve_hints
from repro.runner.engine import CellExecutor, RunSummary, WorkerStats
from repro.runner.store import ShardedResultStore, default_cache_max_bytes

__all__ = [
    "Cell",
    "CellExecutor",
    "CACHE_FORMAT_VERSION",
    "ResultCache",
    "RunSummary",
    "STABLE_SCHEME",
    "ShardedResultStore",
    "WorkerStats",
    "default_cache_dir",
    "default_cache_max_bytes",
    "default_jobs",
    "execute_cell",
    "execute_cells",
    "resolve_hints",
    "run_experiments",
]
