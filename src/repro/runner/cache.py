"""Persistent on-disk result cache for experiment cells.

Every cache entry is content-addressed: the key is the SHA-256 of the
canonical JSON of the cell's complete identity -- root seed, trace
length, site scale, program, measurement input, predictor, size, scheme,
shift policy, and the selection kwargs (see
:meth:`repro.runner.cells.Cell.key_fields`).  Changing *any* of those
produces a different key, so a cache can never hand back a result for a
different experiment; re-running an unchanged suite is pure hits.

Two entry kinds share one directory tree:

* ``result`` -- a serialized :class:`~repro.core.metrics.SimulationResult`
  (the measurement phase);
* ``hints`` -- a serialized :class:`~repro.staticpred.hints.HintAssignment`
  (the selection phase), so concurrent workers share selection work
  through the filesystem instead of through in-memory memoization that
  cannot cross a process boundary.

Storage is delegated to the sharded store
(:class:`repro.runner.store.ShardedResultStore`): entries are one JSON
file each, written atomically, fanned out by key prefix into shard
directories with per-shard manifests, advisory locks, and LRU eviction
under the ``REPRO_CACHE_MAX_BYTES`` budget.  A corrupt or truncated
entry reads as a miss, never as an error -- and is deleted on the spot
so the disk budget stays truthful.
"""

from __future__ import annotations

import hashlib
import json

from repro.core.metrics import SimulationResult
from repro.errors import ReproError
from repro.runner.store import ShardedResultStore
from repro.staticpred.hints import HintAssignment
from repro.utils.env import env_str

__all__ = ["ResultCache", "default_cache_dir", "CACHE_FORMAT_VERSION"]

CACHE_FORMAT_VERSION = 1
"""Bumping this invalidates every existing entry (it feeds the key)."""

ENV_CACHE_DIR = "REPRO_CACHE_DIR"


def default_cache_dir() -> str:
    """The cache directory used when the CLI is not told otherwise."""
    return env_str(ENV_CACHE_DIR) or ".repro-cache"


def _canonical_key(kind: str, fields: dict) -> str:
    """SHA-256 hex digest of an entry's canonical identity."""
    payload = {"version": CACHE_FORMAT_VERSION, "kind": kind, **fields}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed store of simulation results and hint databases.

    Hit/miss counters cover *results* only (the unit the run summary
    reports); hint traffic is an internal sharing mechanism.
    """

    def __init__(self, root: str, max_bytes: int | None = None):
        self.root = root
        self.hits = 0
        self.misses = 0
        self._store = ShardedResultStore(root, max_bytes=max_bytes)

    # -- storage (delegated to the sharded store) ------------------------

    @property
    def evictions(self) -> int:
        """Entries this process evicted enforcing the size budget."""
        return self._store.evictions

    def store_bytes(self) -> int:
        """The store's accounted on-disk size in bytes."""
        return self._store.total_bytes()

    def _path(self, key: str) -> str:
        return self._store.entry_path(key)

    def _read(self, key: str) -> dict | None:
        return self._store.read(key)

    def _write(self, key: str, payload: dict) -> None:
        self._store.write(key, payload)

    # -- results ---------------------------------------------------------

    def result_key(self, ctx, cell) -> str:
        """The content hash identifying one cell's measurement result."""
        return _canonical_key("result", cell.key_fields(ctx))

    def get_result(self, ctx, cell) -> SimulationResult | None:
        """Stored result for a cell, or None (counts the hit/miss)."""
        payload = self._read(self.result_key(ctx, cell))
        if payload is None or "result" not in payload:
            self.misses += 1
            return None
        try:
            result = SimulationResult.from_dict(payload["result"])
        except ReproError:
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put_result(self, ctx, cell, result: SimulationResult) -> None:
        """Persist a cell's result (the key fields ride along for
        debuggability -- ``cat`` an entry and see what produced it)."""
        self._write(self.result_key(ctx, cell), {
            "key": cell.key_fields(ctx),
            "result": result.to_dict(),
        })

    # -- hint databases (selection phase) --------------------------------

    def hint_key(self, ctx, cell) -> str:
        """The content hash identifying one cell's selection result."""
        return _canonical_key("hints", cell.hint_key_fields(ctx))

    def get_hints(self, ctx, cell) -> HintAssignment | None:
        payload = self._read(self.hint_key(ctx, cell))
        if payload is None or "hints" not in payload:
            return None
        try:
            return HintAssignment.from_json(payload["hints"])
        except ReproError:
            return None

    def put_hints(self, ctx, cell, hints: HintAssignment) -> None:
        self._write(self.hint_key(ctx, cell), {
            "key": cell.hint_key_fields(ctx),
            "hints": hints.to_json(),
        })
