"""Process-pool execution engine for experiment cells.

The parent process resolves cache hits up front, schedules only the
missing cells across worker processes, writes the returned results back
to the cache, and hands the caller a results dict in declared cell
order.  Workers are long-lived: each builds one
:class:`~repro.experiments.common.ExperimentContext` at startup (from
the parent context's pickled knobs) and memoizes traces and profiles
across every cell it executes, like the serial path does in the parent.

Determinism: a cell's result is a pure function of (context knobs,
cell); scheduling order, worker count, and cache state only change *who*
computes a result, never its value.  Timing instrumentation is
observability-only -- it is reported in the run summary and never enters
a result, which is why the ``perf_counter`` reads below carry DET002
suppressions instead of being design violations.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field

from repro.core.metrics import SimulationResult
from repro.errors import ExperimentError
from repro.experiments.common import ExperimentContext
from repro.runner.cache import ResultCache
from repro.runner.cells import Cell, execute_cell

__all__ = ["CellExecutor", "RunSummary", "WorkerStats"]


@dataclass(slots=True)
class WorkerStats:
    """Throughput accounting for one worker (or the parent, serially)."""

    label: str
    cells: int = 0
    branches: int = 0
    seconds: float = 0.0

    @property
    def branches_per_second(self) -> float:
        if self.seconds <= 0.0:
            return 0.0
        return self.branches / self.seconds


@dataclass(slots=True)
class RunSummary:
    """Observability record for one runner invocation."""

    jobs: int = 1
    cells: int = 0
    batches: int = 0
    simulated: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    store_bytes: int | None = None
    wall_seconds: float = 0.0
    branches_simulated: int = 0
    workers: dict[str, WorkerStats] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        """Cache hits as a fraction of all cells this run touched."""
        if self.cells == 0:
            return 0.0
        return self.cache_hits / self.cells

    def record_execution(self, label: str, branches: int, seconds: float) -> None:
        stats = self.workers.get(label)
        if stats is None:
            stats = self.workers[label] = WorkerStats(label=label)
        stats.cells += 1
        stats.branches += branches
        stats.seconds += seconds
        self.simulated += 1
        self.branches_simulated += branches

    def describe(self) -> str:
        """Multi-line human summary for the CLI."""
        lines = [
            f"cells: {self.cells} "
            f"({self.simulated} simulated, {self.cache_hits} cache hits, "
            f"hit-rate {self.hit_rate:.1%})",
            f"wall time: {self.wall_seconds:.2f}s with {self.jobs} job(s); "
            f"{self.branches_simulated} branches simulated",
        ]
        if self.store_bytes is not None:
            lines.append(
                f"store: {self.cache_hits} hits, {self.cache_misses} misses, "
                f"{self.cache_evictions} evictions, {self.store_bytes} bytes"
            )
        for label in sorted(self.workers):
            stats = self.workers[label]
            lines.append(
                f"  worker {label}: {stats.cells} cells, "
                f"{stats.branches} branches, "
                f"{stats.branches_per_second:,.0f} branches/s"
            )
        return "\n".join(lines)


# -- worker side -----------------------------------------------------------

_WORKER_GLOBALS = ("_WORKER_CTX", "_WORKER_CACHE")
"""Module globals a worker-reachable function may assign.

This is the declared exception to the worker-purity contract (lint rule
PAR001): the pool initializer stores each worker's context and cache
handle once, at worker startup, before any cell executes.  Everything
else reachable from ``execute_cell``/``_worker_run`` must stay free of
module-state writes — per-cell global mutation would make results
depend on which cells a worker happened to receive, breaking the
parallel==serial bit-identity the experiments rely on.  Extending this
tuple is a contract change, not a suppression: only worker-lifetime
state that is written before the first cell belongs here.
"""

_WORKER_CTX: ExperimentContext | None = None
_WORKER_CACHE: ResultCache | None = None


def _worker_init(ctx: ExperimentContext, cache_root: str | None) -> None:
    """Pool initializer: one context (and cache handle) per worker."""
    global _WORKER_CTX, _WORKER_CACHE
    _WORKER_CTX = ctx
    _WORKER_CACHE = ResultCache(cache_root) if cache_root else None


def _worker_run(cell: Cell) -> tuple[Cell, dict, float, str]:
    """Execute one cell in a worker; returns a picklable record."""
    assert _WORKER_CTX is not None, "worker used before _worker_init"
    start = time.perf_counter()  # repro: allow[DET002] -- observability only, never enters a result
    result = execute_cell(_WORKER_CTX, cell, cache=_WORKER_CACHE)
    elapsed = time.perf_counter() - start  # repro: allow[DET002] -- observability only
    return cell, result.to_dict(), elapsed, f"pid-{os.getpid()}"


# -- parent side -----------------------------------------------------------

class CellExecutor:
    """Schedules cells over a cache and (optionally) a process pool.

    By default each :meth:`execute` call builds and tears down its own
    process pool — the right shape for one-shot CLI runs, where worker
    startup is amortized over the whole figure.  With
    ``persistent=True`` the pool is built on first parallel need and
    reused across every subsequent call until :meth:`close`; the
    service layer depends on this, since paying worker startup (and
    re-memoizing traces) per batch would dwarf the batches themselves.
    The executor is also a context manager: ``with`` closes the pool on
    exit either way.
    """

    def __init__(
        self,
        ctx: ExperimentContext,
        jobs: int = 1,
        cache: ResultCache | None = None,
        persistent: bool = False,
    ):
        if jobs < 1:
            raise ExperimentError(f"jobs must be >= 1, got {jobs}")
        self.ctx = ctx
        self.jobs = jobs
        self.cache = cache
        self.persistent = persistent
        self.summary = RunSummary(jobs=jobs)
        self._pool: ProcessPoolExecutor | None = None

    def __enter__(self) -> CellExecutor:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the persistent pool (idempotent).

        In-flight work finishes first (``wait=True``): the service
        calls this during graceful drain, after the scheduler has
        stopped feeding new batches, so a worker mid-simulation gets to
        write its result back before the process exits.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The persistent pool, built on first use at full ``jobs`` width.

        Unlike the per-call path, width is not trimmed to the batch
        size: the pool outlives this batch, and later (larger) batches
        should find every worker already warm.
        """
        if self._pool is None:
            cache_root = self.cache.root if self.cache is not None else None
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_worker_init,
                initargs=(self.ctx, cache_root),
            )
        return self._pool

    def execute(self, cells: list[Cell]) -> dict[Cell, SimulationResult]:
        """Execute cells (deduplicated), returning ``{cell: result}``.

        The returned dict is in first-declared cell order regardless of
        which worker finished when, so downstream rendering is
        order-deterministic.
        """
        start = time.perf_counter()  # repro: allow[DET002] -- observability only
        ordered = list(dict.fromkeys(cells))
        results: dict[Cell, SimulationResult] = {}
        to_run: list[Cell] = []
        for cell in ordered:
            cached = self.cache.get_result(self.ctx, cell) if self.cache else None
            if cached is not None:
                results[cell] = cached
            else:
                to_run.append(cell)

        if len(to_run) > 1 and (self.jobs > 1 or self._pool is not None):
            self._execute_parallel(to_run, results)
        else:
            self._execute_serial(to_run, results)

        self.summary.cells += len(ordered)
        self.summary.batches += 1
        if self.cache is not None:
            self.summary.cache_hits = self.cache.hits
            self.summary.cache_misses = self.cache.misses
            self.summary.cache_evictions = self.cache.evictions
            self.summary.store_bytes = self.cache.store_bytes()
        self.summary.wall_seconds += (
            time.perf_counter() - start  # repro: allow[DET002] -- observability only
        )
        return {cell: results[cell] for cell in ordered}

    def _execute_serial(
        self, to_run: list[Cell], results: dict[Cell, SimulationResult]
    ) -> None:
        for cell in to_run:
            start = time.perf_counter()  # repro: allow[DET002] -- observability only
            result = execute_cell(self.ctx, cell, cache=self.cache)
            elapsed = time.perf_counter() - start  # repro: allow[DET002] -- observability only
            if self.cache is not None:
                self.cache.put_result(self.ctx, cell, result)
            results[cell] = result
            self.summary.record_execution("main", result.branches, elapsed)

    def _execute_parallel(
        self, to_run: list[Cell], results: dict[Cell, SimulationResult]
    ) -> None:
        if self.persistent:
            self._drain_pool(self._ensure_pool(), to_run, results)
            return
        cache_root = self.cache.root if self.cache is not None else None
        workers = min(self.jobs, len(to_run))
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_init,
            initargs=(self.ctx, cache_root),
        ) as pool:
            self._drain_pool(pool, to_run, results)

    def _drain_pool(
        self,
        pool: ProcessPoolExecutor,
        to_run: list[Cell],
        results: dict[Cell, SimulationResult],
    ) -> None:
        pending = {pool.submit(_worker_run, cell) for cell in to_run}
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                cell, payload, elapsed, label = future.result()
                result = SimulationResult.from_dict(payload)
                if self.cache is not None:
                    self.cache.put_result(self.ctx, cell, result)
                results[cell] = result
                self.summary.record_execution(label, result.branches, elapsed)
