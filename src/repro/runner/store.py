"""Sharded, bounded, concurrency-safe backing store for result entries.

:class:`ShardedResultStore` is the storage layer under
:class:`repro.runner.cache.ResultCache`.  Entries are one JSON file
each, fanned out into two-hex-character shard directories by key prefix
(``root/ab/<key>.json`` -- the exact layout the flat cache always used,
so existing caches stay warm and entry bytes are unchanged).  What the
sharding adds is *per-shard metadata and coordination*:

* every shard carries a ``manifest.json`` segment manifest recording
  each entry's size and a logical last-use stamp (a logical clock, not
  a wall clock -- determinism rules out ``time.time``).  Stamps must
  be comparable *across* shards for LRU to pick true victims, so each
  store seeds a process-local clock from the maximum tick any manifest
  has recorded and hands strictly increasing hints to the stamping
  path; the locked manifest update takes the max with the shard's own
  tick, keeping per-shard stamps monotone even when processes race;
* a per-shard ``.lock`` advisory lockfile serializes the manifest's
  read-modify-write cycles (stamp refresh, eviction's scan-then-delete,
  corrupt-entry removal) across the runner's worker processes, via the
  :func:`repro.utils.io.shard_lock` seam;
* when ``REPRO_CACHE_MAX_BYTES`` is set (the ``ENV_KNOBS`` contract
  declares it; 0 means unbounded), every write is followed by an LRU
  eviction pass that deletes least-recently-stamped entries -- one
  shard lock at a time, never nested -- until the store fits the
  budget.

Entry reads take no lock: entries and manifests become visible only
through the atomic-replace seam, so a reader observes complete old
bytes or complete new bytes, never a torn file.  A corrupt or truncated
entry reads as a miss *and is deleted on the spot* (under the shard
lock, with its manifest record), so eviction accounting and disk
budgets stay truthful instead of carrying dead bytes forever.

Locks degrade gracefully (see :func:`~repro.utils.io.shard_lock`): an
unlockable filesystem can lose an LRU stamp or double-evict, never
corrupt an entry.  Lint rules CONC001/CONC002 prove the discipline this
module relies on: mutations hold the shard lock, locks are scoped by
``with``, and no two shard locks nest.
"""

from __future__ import annotations

import json
import os

from repro.errors import ExperimentError
from repro.utils.env import env_int
from repro.utils.io import atomic_write_text, shard_lock

__all__ = ["ShardedResultStore", "default_cache_max_bytes", "ENV_CACHE_MAX_BYTES"]

ENV_CACHE_MAX_BYTES = "REPRO_CACHE_MAX_BYTES"

MANIFEST_NAME = "manifest.json"
LOCK_NAME = ".lock"
MANIFEST_VERSION = 1


def default_cache_max_bytes() -> int:
    """The store's size budget in bytes (0 = unbounded, the default)."""
    return env_int("REPRO_CACHE_MAX_BYTES", 0, error=ExperimentError)


def _empty_manifest() -> dict:
    return {"version": MANIFEST_VERSION, "tick": 0, "entries": {}}


class ShardedResultStore:
    """Prefix-sharded JSON entry store with manifests, locks, and LRU.

    The store speaks raw JSON payloads keyed by hex digests; the
    result/hint semantics (and the hit/miss accounting they imply) live
    in :class:`~repro.runner.cache.ResultCache` on top.  ``evictions``
    counts entries *this process* evicted; concurrent processes keep
    their own counters, and the stress suite asserts the sum.
    """

    def __init__(self, root: str, max_bytes: int | None = None):
        self.root = root
        self.max_bytes = (
            default_cache_max_bytes() if max_bytes is None else max_bytes
        )
        self.evictions = 0
        self._clock = 0

    # -- layout ----------------------------------------------------------

    def entry_path(self, key: str) -> str:
        """Where one entry's JSON lives (same layout as the flat cache)."""
        return os.path.join(self.root, key[:2], key + ".json")

    def _shard_dir(self, shard: str) -> str:
        return os.path.join(self.root, shard)

    def _manifest_path(self, shard: str) -> str:
        return os.path.join(self.root, shard, MANIFEST_NAME)

    def _lock_path(self, shard: str) -> str:
        return os.path.join(self.root, shard, LOCK_NAME)

    def _shards(self) -> list[str]:
        """Existing shard directory names, sorted (two hex characters)."""
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        return sorted(
            name for name in names
            if len(name) == 2 and os.path.isdir(self._shard_dir(name))
        )

    # -- manifests (call only with the shard lock held for writes) ------

    def _load_manifest(self, shard: str) -> dict:
        """A shard's manifest; corrupt or absent reads as empty.

        A manifest must never be able to *cause* a wrong result: it is
        accounting metadata, and the entries themselves are the truth.
        """
        try:
            with open(self._manifest_path(shard), "r", encoding="utf-8") as stream:
                manifest = json.load(stream)
        except FileNotFoundError:
            return _empty_manifest()
        except (OSError, ValueError):
            return _empty_manifest()
        if (not isinstance(manifest, dict)
                or manifest.get("version") != MANIFEST_VERSION
                or not isinstance(manifest.get("entries"), dict)
                or not isinstance(manifest.get("tick"), int)):
            return _empty_manifest()
        return manifest

    def _write_manifest_locked(self, shard: str, manifest: dict) -> None:
        atomic_write_text(
            self._manifest_path(shard),
            json.dumps(manifest, sort_keys=True),
        )

    def _next_stamp_hint(self) -> int:
        """A cross-shard-comparable LRU stamp candidate.

        Per-shard ticks alone are not comparable between shards (a
        fresh write into a new shard would stamp 1 and lose the LRU
        tiebreak to a genuinely stale entry), so the store keeps a
        process-local logical clock, seeded lazily from the maximum
        tick any manifest has recorded.  The hint is computed *before*
        the shard lock is taken; staleness is harmless because
        :meth:`_stamp_locked` takes the max with the locked manifest's
        own tick.
        """
        if self._clock == 0:
            for shard in self._shards():
                tick = self._load_manifest(shard)["tick"]
                if tick > self._clock:
                    self._clock = tick
        self._clock += 1
        return self._clock

    def _stamp_locked(self, shard: str, key: str, size: int, stamp: int) -> None:
        """Record (or refresh) one entry's size and last-use stamp."""
        manifest = self._load_manifest(shard)
        tick = max(stamp, manifest["tick"] + 1)
        if tick > self._clock:
            self._clock = tick
        manifest["tick"] = tick
        manifest["entries"][key] = [size, tick]
        self._write_manifest_locked(shard, manifest)

    # -- entries ---------------------------------------------------------

    def read(self, key: str) -> dict | None:
        """One entry's payload, or None; corrupt entries are deleted.

        The happy path takes no lock (atomic replace means no torn
        reads); a successful read refreshes the entry's LRU stamp under
        the shard lock, adopting legacy flat-cache entries that predate
        the manifest into the accounting as a side effect.
        """
        try:
            with open(self.entry_path(key), "r", encoding="utf-8") as stream:
                payload = json.load(stream)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            # A torn or corrupt entry is a miss -- and dead bytes the
            # disk budget must not keep paying for: delete it now.
            self._discard(key)
            return None
        if not isinstance(payload, dict):
            self._discard(key)
            return None
        self._touch(key)
        return payload

    def write(self, key: str, payload: dict) -> None:
        """Persist one entry atomically and account for it; then evict.

        Storing is an optimization: a full disk or permission hiccup
        must not kill the simulation that just succeeded.
        """
        text = json.dumps(payload, sort_keys=True)
        shard = key[:2]
        stamp = self._next_stamp_hint()
        try:
            os.makedirs(self._shard_dir(shard), exist_ok=True)
            with shard_lock(self._lock_path(shard)):
                atomic_write_text(self.entry_path(key), text)
                self._stamp_locked(shard, key, len(text.encode("utf-8")), stamp)
        except OSError:
            return
        self._enforce_budget()

    def _touch(self, key: str) -> None:
        """Refresh an entry's LRU stamp after a successful read."""
        shard = key[:2]
        stamp = self._next_stamp_hint()
        try:
            with shard_lock(self._lock_path(shard)):
                size = self._entry_size(key)
                if size is not None:
                    self._stamp_locked(shard, key, size, stamp)
        except OSError:
            return

    def _entry_size(self, key: str) -> int | None:
        try:
            return os.path.getsize(self.entry_path(key))
        except OSError:
            return None

    def _discard(self, key: str) -> None:
        """Delete a corrupt entry and its manifest record."""
        shard = key[:2]
        try:
            with shard_lock(self._lock_path(shard)):
                self._remove_locked(shard, [key])
        except OSError:
            return

    def _remove_locked(self, shard: str, keys: list[str]) -> int:
        """Unlink entries and drop their manifest records; returns the
        number of entries that actually existed (in the manifest or on
        disk) -- the caller holds the shard lock."""
        manifest = self._load_manifest(shard)
        removed = 0
        for key in keys:
            existed = manifest["entries"].pop(key, None) is not None
            try:
                os.unlink(self.entry_path(key))
                existed = True
            except FileNotFoundError:
                pass
            if existed:
                removed += 1
        self._write_manifest_locked(shard, manifest)
        return removed

    # -- budget ----------------------------------------------------------

    def total_bytes(self) -> int:
        """Accounted store size: the sum of every shard manifest."""
        total = 0
        for shard in self._shards():
            manifest = self._load_manifest(shard)
            for size, _stamp in manifest["entries"].values():
                total += size
        return total

    def _enforce_budget(self) -> None:
        """Evict least-recently-stamped entries until the budget holds.

        The candidate scan reads manifest *snapshots* without locks (a
        stale snapshot can only make eviction conservative or pick a
        key another process already removed); each doomed shard is then
        locked -- one at a time, never nested -- and its manifest
        re-read before anything is deleted, so the actual removal is a
        proper locked read-modify-write.
        """
        if self.max_bytes <= 0:
            return
        candidates: list[tuple[int, str, str, int]] = []
        for shard in self._shards():
            manifest = self._load_manifest(shard)
            for key in sorted(manifest["entries"]):
                size, stamp = manifest["entries"][key]
                candidates.append((stamp, key, shard, size))
        total = sum(size for _, _, _, size in candidates)
        if total <= self.max_bytes:
            return
        candidates.sort()
        doomed: dict[str, list[str]] = {}
        for stamp, key, shard, size in candidates:
            if total <= self.max_bytes:
                break
            doomed.setdefault(shard, []).append(key)
            total -= size
        for shard in sorted(doomed):
            try:
                with shard_lock(self._lock_path(shard)):
                    self.evictions += self._remove_locked(shard, doomed[shard])
            except OSError:
                continue
