"""A ProfileMe-style sampling profiler.

Section 4 of the paper, on obtaining per-branch dynamic accuracy for
``Static_Acc``: "This data can be obtained by binary instrumentation or
by on-line performance tools such as ProfileMe."  ProfileMe (Dean et al.,
MICRO 1997) samples in-flight instructions in hardware rather than
instrumenting every one, trading measurement completeness for negligible
overhead — which is what makes always-on profile collection (the Spike
database flow of Section 5.1) practical in production.

This model samples one branch in ``period`` (with a deterministic,
seedable phase) while the full stream still trains the predictor — as in
real ProfileMe, where the processor runs normally and only the sampled
instructions report.  The result is an ordinary
:class:`~repro.profiling.profile.ProgramProfile` /
:class:`~repro.profiling.accuracy.AccuracyProfile` pair built from the
samples, drop-in compatible with every selection scheme, so the effect
of sampling sparsity on selection quality can be studied directly.
"""

from __future__ import annotations

from repro.errors import ProfileError
from repro.predictors.base import BranchPredictor
from repro.profiling.accuracy import AccuracyProfile, BranchAccuracy
from repro.profiling.profile import BranchProfile, ProgramProfile
from repro.utils.rng import derive_rng
from repro.workloads.trace import BranchTrace

__all__ = ["ProfileMeSampler"]


class ProfileMeSampler:
    """Sampled bias + accuracy profiling over one run.

    ``period`` is the mean sampling interval (ProfileMe hardware used
    periods in the tens of thousands; useful values here are smaller
    because traces are shorter).  Sampling intervals are randomized
    around the period, as in the real hardware, to avoid synchronizing
    with loop periods.
    """

    def __init__(self, period: int, seed: int = 0):
        if period < 1:
            raise ProfileError(f"sampling period must be >= 1, got {period}")
        self.period = period
        self.seed = seed

    def profile(
        self,
        trace: BranchTrace,
        predictor: BranchPredictor,
    ) -> tuple[ProgramProfile, AccuracyProfile]:
        """Run the trace, sampling ~1 in ``period`` branches.

        The predictor sees (and trains on) *every* branch -- sampling
        affects only what gets recorded, exactly like hardware sampling
        under a running predictor.  Returns the sampled bias profile and
        the sampled accuracy profile.
        """
        rng = derive_rng(self.seed, "profileme", trace.program_name,
                         trace.input_name)
        predict = predictor.predict
        update = predictor.update
        addresses = trace.addresses
        outcomes = trace.outcomes

        bias_counts: dict[int, list[int]] = {}
        accuracy_counts: dict[int, list[int]] = {}
        if self.period == 1:
            next_sample = 0
        else:
            next_sample = rng.randrange(self.period)

        for i in range(len(addresses)):
            address = addresses[i]
            taken = outcomes[i]
            predicted = predict(address)
            update(address, taken, predicted)
            if i < next_sample:
                continue
            # Record this sample and schedule the next.
            next_sample = i + 1 + (
                0 if self.period == 1 else rng.randrange(2 * self.period - 1)
            )
            entry = bias_counts.get(address)
            if entry is None:
                bias_counts[address] = [1, 1 if taken else 0]
            else:
                entry[0] += 1
                if taken:
                    entry[1] += 1
            entry = accuracy_counts.get(address)
            if entry is None:
                accuracy_counts[address] = [1, 1 if predicted == taken else 0]
            else:
                entry[0] += 1
                if predicted == taken:
                    entry[1] += 1

        bias_profile = ProgramProfile(
            trace.program_name,
            f"{trace.input_name}|sampled/{self.period}",
            {
                address: BranchProfile(executions=c[0], taken=c[1])
                for address, c in bias_counts.items()
            },
        )
        accuracy_profile = AccuracyProfile(
            trace.program_name,
            bias_profile.input_name,
            predictor.name,
            {
                address: BranchAccuracy(executions=c[0], correct=c[1])
                for address, c in accuracy_counts.items()
            },
        )
        return bias_profile, accuracy_profile
