"""A Spike-style executable optimizer for static branch hints.

Spike (Section 5.1) is the deployment vehicle the paper envisions:
it accumulates a profile database across instrumented runs of a program
and later rewrites the binary -- here, stamps hint bits onto
:class:`~repro.arch.program.Program` branch sites -- based on that
database.  Three optimization flavours match Figure 13's bars:

* ``optimize(..., inputs=[one input])`` -- plain profile-guided hints
  (self- or naively cross-trained depending on which input profiled);
* ``optimize(..., inputs=[several])`` -- hints from the merged profile;
* ``optimize(..., stable_only=True)`` -- hints from the merged profile
  restricted to branches whose bias is stable across the recorded inputs
  (the ">5% bias change" filter that rescues perl and m88ksim).
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.arch.program import Program
from repro.errors import SelectionError
from repro.predictors.base import BranchPredictor
from repro.profiling.accuracy import measure_accuracy
from repro.profiling.database import ProfileDatabase
from repro.profiling.profile import ProgramProfile
from repro.staticpred.hints import HintAssignment
from repro.staticpred.selection import select_static_95, select_static_acc
from repro.workloads.trace import BranchTrace

__all__ = ["SpikeOptimizer"]


class SpikeOptimizer:
    """Profile database plus hint rewriting."""

    def __init__(self, database: ProfileDatabase | None = None):
        self.database = database if database is not None else ProfileDatabase()

    def instrument_run(self, trace: BranchTrace) -> ProgramProfile:
        """Record one instrumented run into the database."""
        profile = ProgramProfile.from_trace(trace)
        self.database.record(profile)
        return profile

    def select_hints(
        self,
        program_name: str,
        scheme: str = "static_95",
        inputs: Iterable[str] | None = None,
        stable_only: bool = False,
        stability_threshold: float = 0.05,
        cutoff: float = 0.95,
        accuracy_trace: BranchTrace | None = None,
        predictor_factory: Callable[[], BranchPredictor] | None = None,
    ) -> HintAssignment:
        """Build a hint assignment from the database.

        ``stable_only`` applies the Section 5.1 anomaly filter before
        selection.  ``static_acc`` additionally needs a trace and
        predictor factory to measure per-branch dynamic accuracy.
        """
        if stable_only:
            profile = self.database.stable_filtered(
                program_name, inputs, max_taken_rate_change=stability_threshold
            )
        else:
            profile = self.database.merged(program_name, inputs)

        if scheme == "static_95":
            return select_static_95(profile, cutoff=cutoff)
        if scheme == "static_acc":
            if accuracy_trace is None or predictor_factory is None:
                raise SelectionError(
                    "static_acc via Spike needs accuracy_trace and "
                    "predictor_factory"
                )
            accuracy = measure_accuracy(accuracy_trace, predictor_factory())
            return select_static_acc(profile, accuracy)
        raise SelectionError(
            f"SpikeOptimizer supports schemes static_95 and static_acc, "
            f"got {scheme!r}"
        )

    def optimize(
        self,
        program: Program,
        scheme: str = "static_95",
        inputs: Iterable[str] | None = None,
        stable_only: bool = False,
        **kwargs,
    ) -> HintAssignment:
        """Rewrite ``program``'s hint bits from the database.

        Returns the assignment that was applied (also stamped onto the
        program's sites).
        """
        hints = self.select_hints(
            program.name, scheme=scheme, inputs=inputs,
            stable_only=stable_only, **kwargs,
        )
        hints.apply_to(program)
        return hints
