"""An Atom-style instrumentation framework.

Atom instruments a binary so that analysis procedures run at chosen
program points; the paper instruments every conditional branch.  Our
model replays a :class:`~repro.workloads.trace.BranchTrace` through any
number of registered :class:`BranchAnalysis` objects in one pass --
exactly how the paper's phase one computes a bias profile *and* a
dynamic predictor's per-branch accuracy from the same instrumented run.

For peak simulation throughput the experiment code calls
:func:`repro.core.simulator.simulate` directly (one analysis, inlined
loop); this framework is the composable, multi-analysis front end.
"""

from __future__ import annotations

import abc

from repro.predictors.base import BranchPredictor
from repro.profiling.accuracy import AccuracyProfile, BranchAccuracy
from repro.profiling.profile import BranchProfile, ProgramProfile
from repro.workloads.trace import BranchTrace

__all__ = ["BranchAnalysis", "ProfileAnalysis", "PredictorAnalysis", "AtomTool"]


class BranchAnalysis(abc.ABC):
    """An analysis procedure invoked on every conditional branch."""

    @abc.abstractmethod
    def on_branch(self, address: int, taken: bool) -> None:
        """Observe one executed conditional branch."""

    def finish(self, trace: BranchTrace) -> None:
        """Hook called once after the full trace has been replayed."""


class ProfileAnalysis(BranchAnalysis):
    """Collects a bias profile (execution/taken counts per branch)."""

    def __init__(self) -> None:
        self._counts: dict[int, list[int]] = {}
        self.profile: ProgramProfile | None = None

    def on_branch(self, address: int, taken: bool) -> None:
        entry = self._counts.get(address)
        if entry is None:
            self._counts[address] = [1, 1 if taken else 0]
        else:
            entry[0] += 1
            if taken:
                entry[1] += 1

    def finish(self, trace: BranchTrace) -> None:
        self.profile = ProgramProfile(
            trace.program_name,
            trace.input_name,
            {
                address: BranchProfile(executions=c[0], taken=c[1])
                for address, c in self._counts.items()
            },
        )


class PredictorAnalysis(BranchAnalysis):
    """Simulates a dynamic predictor, recording per-branch accuracy."""

    def __init__(self, predictor: BranchPredictor):
        self.predictor = predictor
        self.mispredictions = 0
        self._counts: dict[int, list[int]] = {}
        self.accuracy: AccuracyProfile | None = None

    def on_branch(self, address: int, taken: bool) -> None:
        predicted = self.predictor.predict(address)
        self.predictor.update(address, taken, predicted)
        correct = predicted == taken
        if not correct:
            self.mispredictions += 1
        entry = self._counts.get(address)
        if entry is None:
            self._counts[address] = [1, 1 if correct else 0]
        else:
            entry[0] += 1
            if correct:
                entry[1] += 1

    def finish(self, trace: BranchTrace) -> None:
        self.accuracy = AccuracyProfile(
            trace.program_name,
            trace.input_name,
            self.predictor.name,
            {
                address: BranchAccuracy(executions=c[0], correct=c[1])
                for address, c in self._counts.items()
            },
        )


class AtomTool:
    """Replays traces through registered analyses, one pass each run."""

    def __init__(self) -> None:
        self._analyses: list[BranchAnalysis] = []

    def register(self, analysis: BranchAnalysis) -> BranchAnalysis:
        """Attach an analysis; returns it for chaining."""
        self._analyses.append(analysis)
        return analysis

    @property
    def analyses(self) -> tuple[BranchAnalysis, ...]:
        return tuple(self._analyses)

    def run(self, trace: BranchTrace) -> None:
        """Invoke every analysis on every branch of ``trace``."""
        callbacks = [a.on_branch for a in self._analyses]
        addresses = trace.addresses
        outcomes = trace.outcomes
        if len(callbacks) == 1:
            callback = callbacks[0]
            for i in range(len(addresses)):
                callback(addresses[i], outcomes[i])
        else:
            for i in range(len(addresses)):
                address = addresses[i]
                taken = outcomes[i]
                for callback in callbacks:
                    callback(address, taken)
        for analysis in self._analyses:
            analysis.finish(trace)
