"""Toolchain models: Atom-style instrumentation and Spike-style rewriting.

The paper's experiments were built on two Compaq tools; this subpackage
models the roles they play in the methodology:

* :mod:`repro.tools.atom` -- Atom, the binary instrumentation framework:
  "On each conditional branch we call a procedure that performs branch
  prediction using a pre-selected scheme and then updates misprediction
  statistics."  Our model walks a trace and dispatches per-branch
  analysis callbacks, letting several analyses (profiler, predictor
  simulations) share one pass.
* :mod:`repro.tools.profileme` -- ProfileMe, the sampling profiler the
  paper names as the on-line alternative to Atom for per-branch accuracy
  data: samples ~1 in N branches while the predictor runs normally.
* :mod:`repro.tools.spike` -- Spike, the executable optimizer: maintains
  the per-program profile database across runs and rewrites static hint
  bits into the program based on it (including the merged/filtered
  profiles of Section 5.1).
"""

from repro.tools.atom import AtomTool, BranchAnalysis, PredictorAnalysis, ProfileAnalysis
from repro.tools.profileme import ProfileMeSampler
from repro.tools.spike import SpikeOptimizer

__all__ = [
    "AtomTool",
    "BranchAnalysis",
    "ProfileAnalysis",
    "PredictorAnalysis",
    "ProfileMeSampler",
    "SpikeOptimizer",
]
