"""First-order front-end (fetch engine) cycle model.

The model is deliberately simple and fully documented rather than
pretending to be cycle-accurate:

* Instructions arrive in fetch blocks of up to ``fetch_width`` per cycle.
  The ``gap`` of each trace record (the instructions up to and including
  its branch) costs ``ceil(gap / fetch_width)`` cycles -- branch records
  end fetch regions, which is how real fetch engines behave for taken
  control flow.
* A branch *predicted taken* breaks the fetch stream: the target enters
  fetch next cycle plus ``taken_bubble`` dead cycles (the classic
  fetch-bubble of a taken branch, even when predicted correctly).
* A *mispredicted* branch squashes the wrong path and redirects fetch
  after ``redirect_penalty`` cycles (the pipeline depth the paper's
  "increasingly deeper" remark is about -- roughly 7 for the Alpha
  21264 generation).

What the model ignores (on purpose): back-end stalls, cache misses,
wrong-path fetch bandwidth contention, and overlap between redirect and
fetch.  Those affect all predictor configurations roughly equally, so
IPC *deltas* between configurations -- which is what the experiments
report -- are meaningful even though absolute IPC is optimistic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.predictors.base import BranchPredictor
from repro.workloads.trace import BranchTrace

__all__ = ["PipelineResult", "FrontEndSimulator"]


@dataclass(slots=True)
class PipelineResult:
    """Cycle accounting for one trace under one predictor."""

    program_name: str
    predictor_name: str
    instructions: int
    branches: int
    mispredictions: int
    fetch_cycles: int
    """Cycles spent fetching instruction blocks."""
    taken_bubble_cycles: int
    """Dead cycles after correctly-predicted taken branches."""
    redirect_cycles: int
    """Dead cycles repairing mispredictions."""

    @property
    def cycles(self) -> int:
        """Total modelled cycles."""
        return self.fetch_cycles + self.taken_bubble_cycles + self.redirect_cycles

    @property
    def ipc(self) -> float:
        """Instructions per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def cpi(self) -> float:
        """Cycles per instruction."""
        if self.instructions == 0:
            return 0.0
        return self.cycles / self.instructions

    @property
    def redirect_overhead(self) -> float:
        """Fraction of cycles lost to mispredictions -- the cost the
        paper's scheme attacks."""
        cycles = self.cycles
        if cycles == 0:
            return 0.0
        return self.redirect_cycles / cycles

    @property
    def misp_per_ki(self) -> float:
        """The paper's metric, for cross-checking against simulate()."""
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.mispredictions / self.instructions

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"{self.program_name}/{self.predictor_name}: "
            f"IPC {self.ipc:.3f} (fetch {self.fetch_cycles}, "
            f"bubbles {self.taken_bubble_cycles}, "
            f"redirects {self.redirect_cycles} cycles; "
            f"{self.redirect_overhead:.1%} redirect overhead)"
        )


class FrontEndSimulator:
    """Trace-driven fetch-engine simulation around any branch predictor."""

    def __init__(
        self,
        fetch_width: int = 4,
        redirect_penalty: int = 7,
        taken_bubble: int = 1,
    ):
        if fetch_width < 1:
            raise ConfigurationError(
                f"fetch_width must be >= 1, got {fetch_width}"
            )
        if redirect_penalty < 0:
            raise ConfigurationError(
                f"redirect_penalty must be >= 0, got {redirect_penalty}"
            )
        if taken_bubble < 0:
            raise ConfigurationError(
                f"taken_bubble must be >= 0, got {taken_bubble}"
            )
        self.fetch_width = fetch_width
        self.redirect_penalty = redirect_penalty
        self.taken_bubble = taken_bubble

    def run(self, trace: BranchTrace, predictor: BranchPredictor) -> PipelineResult:
        """Simulate the front end over ``trace`` with ``predictor``.

        The predictor is trained in place (pass a fresh instance for
        independent runs); a :class:`CombinedPredictor` works unchanged,
        so the IPC effect of static hints falls straight out.
        """
        width = self.fetch_width
        redirect_penalty = self.redirect_penalty
        taken_bubble = self.taken_bubble
        predict = predictor.predict
        update = predictor.update
        addresses = trace.addresses
        outcomes = trace.outcomes
        gaps = trace.gaps

        mispredictions = 0
        fetch_cycles = 0
        taken_bubble_cycles = 0
        redirect_cycles = 0

        for i in range(len(addresses)):
            address = addresses[i]
            taken = outcomes[i]
            gap = gaps[i]
            predicted = predict(address)
            update(address, taken, predicted)
            # ceil(gap / width) without floats.
            fetch_cycles += -(-gap // width)
            if predicted != taken:
                mispredictions += 1
                redirect_cycles += redirect_penalty
            elif taken:
                taken_bubble_cycles += taken_bubble

        return PipelineResult(
            program_name=trace.program_name,
            predictor_name=predictor.name,
            instructions=trace.instruction_count,
            branches=len(addresses),
            mispredictions=mispredictions,
            fetch_cycles=fetch_cycles,
            taken_bubble_cycles=taken_bubble_cycles,
            redirect_cycles=redirect_cycles,
        )

    def speedup(
        self,
        trace: BranchTrace,
        base: BranchPredictor,
        improved: BranchPredictor,
    ) -> float:
        """IPC ratio of ``improved`` over ``base`` on the same trace."""
        base_result = self.run(trace, base)
        improved_result = self.run(trace, improved)
        if improved_result.cycles == 0:
            return 1.0
        return base_result.cycles / improved_result.cycles
