"""A trace-driven processor front-end model.

The paper's opening argument: "Correct branch predictions avoid pipeline
stalls, but an incorrect prediction degrades performance because the
processor has wasted time and resources evaluating wrong path
instructions.  As processor pipelines get increasingly deeper this
performance degradation is becoming increasingly significant."

:mod:`repro.pipeline.frontend` turns that argument into numbers: a
first-order, trace-driven fetch-engine model that charges fetch cycles,
taken-branch fetch bubbles, and misprediction redirect penalties while a
real predictor (any :class:`~repro.predictors.base.BranchPredictor`,
including a :class:`~repro.core.combined.CombinedPredictor`) makes the
predictions.  It reports IPC and a cycle breakdown, separating the cost
the paper's scheme attacks (redirects) from the costs it cannot touch
(fetch and taken bubbles).
"""

from repro.pipeline.frontend import FrontEndSimulator, PipelineResult

__all__ = ["FrontEndSimulator", "PipelineResult"]
