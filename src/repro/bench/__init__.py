"""Reproducible performance benchmarking (``repro bench``).

The subsystem has three layers:

* :mod:`repro.bench.timing` -- warmup + repeated sampling, summarized
  by median and interquartile range;
* :mod:`repro.bench.cases` -- the suite: reference-versus-fast kernel
  microbenches plus end-to-end experiment-cell benches;
* :mod:`repro.bench.snapshot` -- the versioned ``BENCH_<name>.json``
  artifact and the threshold-based regression compare that CI gates on.

Benchmarks measure the same deterministic simulations the experiments
run, so two snapshots differ only in wall time -- never in what work
was executed -- which is what makes the regression compare meaningful.
"""

from repro.bench.cases import (
    BenchCase,
    collision_cases,
    end_to_end_cases,
    kernel_cases,
    run_suite,
)
from repro.bench.snapshot import (
    BenchFormatError,
    BenchResult,
    BenchSnapshot,
    Comparison,
    compare,
    parse_threshold,
    snapshot_filename,
)
from repro.bench.timing import TimingStats, measure

__all__ = [
    "BenchCase",
    "BenchFormatError",
    "BenchResult",
    "BenchSnapshot",
    "Comparison",
    "TimingStats",
    "collision_cases",
    "compare",
    "end_to_end_cases",
    "kernel_cases",
    "measure",
    "parse_threshold",
    "run_suite",
    "snapshot_filename",
]
