"""Steady-state wall-time measurement for benchmark cases.

The protocol is the standard microbenchmark discipline: ``warmup``
un-timed calls absorb one-time costs (imports, memoized trace
construction, branch-predictor warmup of the *host* CPU), then
``repeats`` timed calls produce independent samples.  The summary
statistic is the **median** -- robust against the one-sided noise of a
shared machine (a sample can only be slowed down, never sped up) -- with
the interquartile range reported as the spread.

Wall time is the payload of this module, so the DET002 clock ban is
suppressed exactly at the two call sites that read the clock; timings
never flow into simulation results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

__all__ = ["TimingStats", "measure"]


def _quantile(ordered: list[float], q: float) -> float:
    """Linear-interpolation quantile of an ascending, non-empty list."""
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction


@dataclass(frozen=True, slots=True)
class TimingStats:
    """Per-case timing samples (seconds, in run order) and summaries."""

    samples: tuple[float, ...]

    @property
    def median_s(self) -> float:
        """Median sample: the case's representative wall time."""
        return _quantile(sorted(self.samples), 0.5)

    @property
    def iqr_s(self) -> float:
        """Interquartile range: the run-to-run spread."""
        ordered = sorted(self.samples)
        return _quantile(ordered, 0.75) - _quantile(ordered, 0.25)


def measure(fn: Callable[[], object], repeats: int = 5,
            warmup: int = 1) -> TimingStats:
    """Time ``fn`` after warmup; one sample per timed call.

    ``fn`` owns its per-call setup: a simulation benchmark must build a
    fresh predictor inside ``fn`` (training is stateful), and that setup
    cost is deliberately included -- it is part of what a user of
    ``simulate()`` pays.  Callers keep setup negligible by sizing the
    trace, not by excluding work from the clock.
    """
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()  # repro: allow[DET002] -- wall time is the payload
        fn()
        elapsed = time.perf_counter() - start  # repro: allow[DET002] -- wall time is the payload
        samples.append(elapsed)
    return TimingStats(tuple(samples))
