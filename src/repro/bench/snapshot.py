"""Benchmark snapshots: a versioned JSON format and regression compare.

A snapshot (``BENCH_<name>.json`` at the repository root) records one
``repro bench`` run: the configuration that produced it and, per case,
the median/IQR wall time and throughput in branches per second.
Snapshots carry **no timestamps or host identifiers** -- they are meant
to be diffed, and two runs of equal performance should produce
near-identical files.

:func:`compare` is the CI regression gate: it pairs cases by name and
flags every case whose throughput fell below ``old / threshold``.
Cases present on only one side are reported as informational skips, not
failures -- adding a benchmark must not break the gate retroactively.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.errors import ReproError
from repro.utils.io import atomic_write_text

__all__ = [
    "FORMAT_HEADER",
    "BenchFormatError",
    "BenchResult",
    "BenchSnapshot",
    "Comparison",
    "compare",
    "parse_threshold",
    "snapshot_filename",
]

FORMAT_HEADER = "repro-bench v1"


class BenchFormatError(ReproError):
    """A snapshot file or threshold string is malformed."""


def snapshot_filename(name: str) -> str:
    """``BENCH_<name>.json`` -- the conventional snapshot location."""
    return f"BENCH_{name}.json"


@dataclass(frozen=True, slots=True)
class BenchResult:
    """One benchmark case's measurement."""

    case: str
    branches: int
    median_s: float
    iqr_s: float

    @property
    def branches_per_s(self) -> float:
        """Throughput; the quantity the regression gate compares."""
        if self.median_s <= 0.0:
            return 0.0
        return self.branches / self.median_s

    def to_dict(self) -> dict:
        return {
            "case": self.case,
            "branches": self.branches,
            "median_s": self.median_s,
            "iqr_s": self.iqr_s,
            "branches_per_s": self.branches_per_s,
        }


@dataclass(frozen=True, slots=True)
class BenchSnapshot:
    """One full ``repro bench`` run."""

    name: str
    trace_length: int
    repeats: int
    warmup: int
    results: tuple[BenchResult, ...]

    def to_json(self) -> str:
        payload = {
            "format": FORMAT_HEADER,
            "name": self.name,
            "trace_length": self.trace_length,
            "repeats": self.repeats,
            "warmup": self.warmup,
            "results": [result.to_dict() for result in self.results],
        }
        return json.dumps(payload, indent=2) + "\n"

    def save(self, path: str) -> None:
        # Atomic so a concurrent `--compare` (or an interrupted bench
        # run) never reads a half-written snapshot.
        atomic_write_text(path, self.to_json(), encoding="ascii")

    @classmethod
    def from_dict(cls, payload: dict) -> "BenchSnapshot":
        if payload.get("format") != FORMAT_HEADER:
            raise BenchFormatError(
                f"bad snapshot format {payload.get('format')!r}, "
                f"expected {FORMAT_HEADER!r}"
            )
        try:
            results = tuple(
                BenchResult(
                    case=str(entry["case"]),
                    branches=int(entry["branches"]),
                    median_s=float(entry["median_s"]),
                    iqr_s=float(entry["iqr_s"]),
                )
                for entry in payload["results"]
            )
            return cls(
                name=str(payload["name"]),
                trace_length=int(payload["trace_length"]),
                repeats=int(payload["repeats"]),
                warmup=int(payload["warmup"]),
                results=results,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise BenchFormatError(f"malformed snapshot: {exc}") from exc

    @classmethod
    def load(cls, path: str) -> "BenchSnapshot":
        try:
            with open(path, "r", encoding="ascii") as stream:
                payload = json.load(stream)
        except (OSError, json.JSONDecodeError) as exc:
            raise BenchFormatError(
                f"cannot read snapshot {path!r}: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise BenchFormatError(f"snapshot {path!r} is not a JSON object")
        return cls.from_dict(payload)


def parse_threshold(text: str) -> float:
    """A regression threshold as a slowdown factor ``>= 1``.

    Accepted spellings, all meaning "fail when the new run is more than
    this much slower":

    * ``"20%"``  -- up to 20% slower is tolerated (factor ``1.25``);
    * ``"2x"``   -- up to 2x slower is tolerated (factor ``2.0``);
    * ``"1.5"``  -- a bare number ``> 1`` is a factor;
    * ``"0.2"``  -- a bare number ``< 1`` is a fraction (same as 20%).
    """
    raw = text.strip().lower()
    try:
        if raw.endswith("%"):
            fraction = float(raw[:-1]) / 100.0
        elif raw.endswith("x"):
            factor = float(raw[:-1])
            if factor < 1.0:
                raise BenchFormatError(
                    f"threshold {text!r}: an x-factor must be >= 1"
                )
            return factor
        else:
            value = float(raw)
            if value > 1.0:
                return value
            fraction = value
    except ValueError as exc:
        raise BenchFormatError(
            f"cannot parse regression threshold {text!r}; expected e.g. "
            "'20%', '2x', or '1.5'"
        ) from exc
    if not 0.0 <= fraction < 1.0:
        raise BenchFormatError(
            f"threshold {text!r}: a fractional slowdown must be in [0, 1)"
        )
    return 1.0 / (1.0 - fraction)


@dataclass(frozen=True, slots=True)
class Comparison:
    """One case's baseline-versus-current verdict."""

    case: str
    old_branches_per_s: float
    new_branches_per_s: float
    threshold: float

    @property
    def ratio(self) -> float:
        """Current over baseline throughput (1.0 = unchanged)."""
        if self.old_branches_per_s <= 0.0:
            return 1.0
        return self.new_branches_per_s / self.old_branches_per_s

    @property
    def regressed(self) -> bool:
        return self.new_branches_per_s * self.threshold \
            < self.old_branches_per_s

    def render(self) -> str:
        verdict = "REGRESSION" if self.regressed else "ok"
        return (
            f"{self.case}: {self.old_branches_per_s:,.0f} -> "
            f"{self.new_branches_per_s:,.0f} branches/s "
            f"({self.ratio:.2f}x) {verdict}"
        )


def compare(old: BenchSnapshot, new: BenchSnapshot,
            threshold: float) -> list[Comparison]:
    """Pair cases by name and judge each against ``threshold``.

    Returns one :class:`Comparison` per case present in *both*
    snapshots, in the new snapshot's order.
    """
    if threshold < 1.0:
        raise BenchFormatError(
            f"threshold factor must be >= 1, got {threshold}"
        )
    baseline = {result.case: result for result in old.results}
    comparisons = []
    for result in new.results:
        reference = baseline.get(result.case)
        if reference is None:
            continue
        comparisons.append(Comparison(
            case=result.case,
            old_branches_per_s=reference.branches_per_s,
            new_branches_per_s=result.branches_per_s,
            threshold=threshold,
        ))
    return comparisons
