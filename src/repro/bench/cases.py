"""The benchmark suite: which cases ``repro bench`` runs.

Two tiers:

* **Kernel microbenches** (always run): each hot predictor family,
  simulated over the same gcc/ref trace with ``kernel="reference"``
  versus ``kernel="fast"``.  The pairing is the point -- the ratio of
  the two rows is the speedup the fast kernels buy, and the fast rows
  are what the CI regression gate protects.
* **End-to-end benches** (skipped by ``--quick``): a full two-phase
  ``ExperimentContext.run`` configuration, measuring what an experiment
  cell actually costs, combined-predictor overhead and all.
* **Replay benches** (always run): pure simulation over a pinned trace
  artifact from the :mod:`repro.traces` store -- the trace is generated
  (once) and digest-verified *outside* the timed region, so the number
  is simulation throughput with zero generation noise, which is what
  the fast-path-gap work (ROADMAP item 1) needs to watch.

Fast-kernel cases are skipped (not failed) when numpy is unavailable,
mirroring :mod:`repro.kernels`' graceful degradation; the reference
rows still run, so a snapshot is produced either way.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.snapshot import BenchResult, BenchSnapshot
from repro.bench.timing import measure
from repro.core.simulator import simulate
from repro.experiments.common import KIB, ExperimentContext
from repro.kernels import numpy_available
from repro.predictors.sizing import make_predictor

__all__ = [
    "BenchCase",
    "DEFAULT_REPEATS",
    "DEFAULT_TRACE_LENGTH",
    "QUICK_REPEATS",
    "QUICK_TRACE_LENGTH",
    "WARMUP",
    "collision_cases",
    "end_to_end_cases",
    "kernel_cases",
    "profiling_cases",
    "replay_cases",
    "run_suite",
    "service_cases",
]

DEFAULT_TRACE_LENGTH = 200_000
QUICK_TRACE_LENGTH = 50_000
DEFAULT_REPEATS = 5
QUICK_REPEATS = 3
WARMUP = 1

_PROGRAM = "gcc"
_INPUT = "ref"
_SIZE_BYTES = 4 * KIB
_FAMILIES = ("bimodal", "gshare", "ghist")


@dataclass(frozen=True, slots=True)
class BenchCase:
    """One named measurement: a predictor configuration and kernel mode."""

    name: str
    predictor: str
    size_bytes: int
    kernel: str
    scheme: str = "none"

    @property
    def end_to_end(self) -> bool:
        """Whether the case runs the full two-phase experiment flow."""
        return self.scheme != "none"


def kernel_cases(include_fast: bool | None = None) -> tuple[BenchCase, ...]:
    """The reference/fast microbench pairs, in report order.

    ``include_fast=None`` probes numpy availability; passing an explicit
    boolean makes the suite deterministic for tests.
    """
    if include_fast is None:
        include_fast = numpy_available()
    kernels = ("reference", "fast") if include_fast else ("reference",)
    return tuple(
        BenchCase(f"{family}/{kernel}", family, _SIZE_BYTES, kernel)
        for family in _FAMILIES
        for kernel in kernels
    )


def profiling_cases(include_fast: bool | None = None) -> tuple[BenchCase, ...]:
    """The profile-tally pair: scalar loop versus vectorized column pass.

    Mirrors the kernel pairs: ``profile/reference`` runs the
    numpy-free scalar tally, ``profile/fast`` the whole-column
    :meth:`~repro.profiling.profile.ProgramProfile.from_trace` pass,
    and the ratio is the phase-one speedup.
    """
    if include_fast is None:
        include_fast = numpy_available()
    kernels = ("reference", "fast") if include_fast else ("reference",)
    return tuple(
        BenchCase(f"profile/{kernel}", "bimodal", _SIZE_BYTES, kernel)
        for kernel in kernels
    )


def collision_cases(include_fast: bool | None = None) -> tuple[BenchCase, ...]:
    """The collision-attribution pair: scalar loop versus index snapshot.

    ``collision/reference`` runs the per-event victim/aggressor loop,
    ``collision/fast`` the vectorized
    :func:`~repro.profiling.collision_profile.measure_collision_involvement`
    path (index snapshot + stable sort + bincounts); the ratio is the
    collision-phase speedup of the static_collision selection flow.
    """
    if include_fast is None:
        include_fast = numpy_available()
    kernels = ("reference", "fast") if include_fast else ("reference",)
    return tuple(
        BenchCase(f"collision/{kernel}", "gshare", _SIZE_BYTES, kernel)
        for kernel in kernels
    )


def replay_cases() -> tuple[BenchCase, ...]:
    """Pure-simulation benches over a pinned trace-store artifact.

    One case per suite tier: gshare over the store-ensured gcc/ref
    artifact at the bench context's knobs, with ``kernel="auto"``.
    Loading and digest-verifying the artifact happens in the runner
    factory, outside the timed closure.
    """
    return (BenchCase("replay/gshare", "gshare", _SIZE_BYTES, "auto"),)


def service_cases() -> tuple[BenchCase, ...]:
    """The service-path round-trip bench (always run; CI-gated).

    One in-process :class:`~repro.service.server.PredictorService` on an
    OS-assigned port, one pipelined client, one *cached* cell: the timed
    region is protocol encode -> TCP -> scheduler memo hit -> response,
    i.e. the whole serving overhead with zero simulation inside it.
    Setup (server start, connect, the priming submit that warms the
    memo) happens in the runner factory; teardown in its cleanup hook.
    The result's ``branches`` count is 1, so the reported
    "branches/s" column reads directly as requests/s, and the CI 2x
    gate trips on service-path latency regressions.
    """
    return (BenchCase("service/roundtrip", "gshare", _SIZE_BYTES, "auto"),)


def end_to_end_cases() -> tuple[BenchCase, ...]:
    """The full-flow benches (static_95 selection + combined measure)."""
    return (
        BenchCase("e2e/gshare/static_95", "gshare", _SIZE_BYTES,
                  "auto", scheme="static_95"),
    )


def _service_runner(case: BenchCase, ctx: ExperimentContext):
    """The service round-trip closure (see :func:`service_cases`).

    The server, client, and priming submit live in this factory; the
    returned closure times one cached submit.  ``run.cleanup`` tears the
    stack down -- :func:`run_suite` calls it after ``measure``.
    """
    import asyncio

    from repro.service.client import ServiceClient
    from repro.service.config import ServiceConfig
    from repro.service.server import PredictorService

    loop = asyncio.new_event_loop()
    config = ServiceConfig(port=0, window_s=0.0)
    service = PredictorService(ctx, config, jobs=1, cache=None)
    loop.run_until_complete(service.start())
    client = loop.run_until_complete(
        ServiceClient.connect(config.host, service.port))
    cell = {"program": _PROGRAM, "predictor": case.predictor,
            "size_bytes": case.size_bytes}
    # Prime the scheduler memo: the timed region below is then the pure
    # serving overhead (encode -> TCP -> memo hit -> response).
    loop.run_until_complete(client.submit_result(cell))

    def run() -> None:
        loop.run_until_complete(client.submit_result(cell))

    def cleanup() -> None:
        loop.run_until_complete(client.close())
        loop.run_until_complete(service.stop())
        loop.close()

    run.cleanup = cleanup
    return run


def _case_runner(case: BenchCase, ctx: ExperimentContext):
    """A zero-argument closure running one case once.

    A fresh predictor is built inside the closure on every call:
    simulation trains in place, and a warm table would change both the
    work done and the result.
    """
    if case.end_to_end:
        def run() -> None:
            ctx.run(_PROGRAM, case.predictor, case.size_bytes,
                    scheme=case.scheme, measure_input=_INPUT)
        return run
    if case.name.startswith("service/"):
        return _service_runner(case, ctx)
    if case.name.startswith("replay/"):
        from repro.traces import TraceSpec, TraceStore

        spec = TraceSpec(
            name=f"bench-{_PROGRAM}-{_INPUT}-{ctx.trace_length}",
            program=_PROGRAM, input_name=_INPUT,
            length=ctx.trace_length, seed=ctx.seed,
            site_scale=ctx.site_scale,
        )
        pinned = TraceStore().ensure(spec)

        def run() -> None:
            predictor = make_predictor(case.predictor, case.size_bytes)
            simulate(pinned, predictor, kernel=case.kernel)
        return run
    trace = ctx.trace(_PROGRAM, _INPUT)
    if case.name.startswith("collision/"):
        from repro.profiling.collision_profile import (
            _measure_collision_involvement_scalar,
            measure_collision_involvement,
        )

        if case.kernel == "reference":
            def run() -> None:
                _measure_collision_involvement_scalar(
                    trace, make_predictor(case.predictor, case.size_bytes))
        else:
            def run() -> None:
                measure_collision_involvement(
                    trace, make_predictor(case.predictor, case.size_bytes))
        return run
    if case.name.startswith("profile/"):
        from repro.profiling.profile import ProgramProfile

        if case.kernel == "reference":
            def run() -> None:
                ProgramProfile._from_trace_scalar(trace)
        else:
            def run() -> None:
                ProgramProfile.from_trace(trace)
        return run

    def run() -> None:
        predictor = make_predictor(case.predictor, case.size_bytes)
        simulate(trace, predictor, kernel=case.kernel)
    return run


def run_suite(
    name: str = "kernels",
    quick: bool = False,
    trace_length: int | None = None,
    repeats: int | None = None,
) -> BenchSnapshot:
    """Run the suite and return the snapshot (not yet written to disk)."""
    if trace_length is None:
        trace_length = QUICK_TRACE_LENGTH if quick else DEFAULT_TRACE_LENGTH
    if repeats is None:
        repeats = QUICK_REPEATS if quick else DEFAULT_REPEATS
    ctx = ExperimentContext(trace_length=trace_length, kernel="auto")
    cases = (kernel_cases() + profiling_cases() + collision_cases()
             + replay_cases() + service_cases())
    if not quick:
        cases = cases + end_to_end_cases()
    results = []
    for case in cases:
        runner = _case_runner(case, ctx)
        try:
            stats = measure(runner, repeats=repeats, warmup=WARMUP)
        finally:
            cleanup = getattr(runner, "cleanup", None)
            if cleanup is not None:
                cleanup()
        results.append(BenchResult(
            case=case.name,
            # Service cases time one request, so their "branches/s"
            # column reads directly as requests/s.
            branches=(1 if case.name.startswith("service/")
                      else trace_length),
            median_s=stats.median_s,
            iqr_s=stats.iqr_s,
        ))
    return BenchSnapshot(
        name=name,
        trace_length=trace_length,
        repeats=repeats,
        warmup=WARMUP,
        results=tuple(results),
    )
