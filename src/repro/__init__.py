"""repro: a reproduction of Patil & Emer (HPCA 2000).

*Combining Static and Dynamic Branch Prediction to Reduce Destructive
Aliasing* studies how profile-selected static branch hints relieve
aliasing in dynamic branch predictors.  This library rebuilds the whole
stack in Python:

* five dynamic predictors (bimodal, ghist/GAg, gshare, bi-mode,
  2bcgskew) plus an agree-predictor baseline (:mod:`repro.predictors`);
* synthetic SPECINT95-calibrated workloads standing in for the paper's
  Atom-instrumented Alpha binaries (:mod:`repro.workloads`);
* profiling, Spike-style profile databases, and the Static_95 /
  Static_Acc / Static_Fac selection schemes (:mod:`repro.profiling`,
  :mod:`repro.staticpred`);
* the combined static+dynamic predictor with the optional
  history-shift policy, simulation, and collision instrumentation
  (:mod:`repro.core`);
* one experiment runner per table and figure of the paper
  (:mod:`repro.experiments`) and a CLI (``python -m repro``).

Quickstart::

    from repro import (
        build_workload, get_spec, make_predictor, simulate,
        run_selection_phase, run_combined,
    )

    workload = build_workload(get_spec("gcc"), "ref", root_seed=42,
                              site_scale=0.125)
    trace = workload.execute(100_000)
    base = simulate(trace, make_predictor("gshare", 8192))
    hints = run_selection_phase(
        trace, "static_acc",
        predictor_factory=lambda: make_predictor("gshare", 8192),
    )
    combined = run_combined(trace, make_predictor("gshare", 8192), hints)
    print(base.misp_per_ki, "->", combined.misp_per_ki)
"""

from repro.arch import BranchSite, HintBits, Program, ShiftPolicy
from repro.core import (
    CombinedPredictor,
    SimulationResult,
    run_combined,
    run_selection_phase,
    simulate,
)
from repro.errors import ReproError
from repro.experiments import run_experiment
from repro.predictors import (
    BranchPredictor,
    CollisionTracker,
    make_predictor,
    PREDICTOR_NAMES,
)
from repro.profiling import (
    AccuracyProfile,
    ProfileDatabase,
    ProgramProfile,
    analyze_drift,
    measure_accuracy,
)
from repro.staticpred import (
    HintAssignment,
    select_static_95,
    select_static_acc,
    select_static_fac,
)
from repro.pipeline import FrontEndSimulator, PipelineResult
from repro.tools import AtomTool, SpikeOptimizer
from repro.workloads import (
    BranchTrace,
    SPEC95_PROGRAMS,
    build_workload,
    get_spec,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # architecture
    "Program",
    "BranchSite",
    "HintBits",
    "ShiftPolicy",
    # predictors
    "BranchPredictor",
    "make_predictor",
    "PREDICTOR_NAMES",
    "CollisionTracker",
    # workloads
    "BranchTrace",
    "build_workload",
    "get_spec",
    "SPEC95_PROGRAMS",
    # profiling
    "ProgramProfile",
    "AccuracyProfile",
    "ProfileDatabase",
    "measure_accuracy",
    "analyze_drift",
    # static prediction
    "HintAssignment",
    "select_static_95",
    "select_static_acc",
    "select_static_fac",
    # core
    "CombinedPredictor",
    "SimulationResult",
    "simulate",
    "run_selection_phase",
    "run_combined",
    # tools, pipeline, and experiments
    "AtomTool",
    "SpikeOptimizer",
    "FrontEndSimulator",
    "PipelineResult",
    "run_experiment",
    # errors
    "ReproError",
]
