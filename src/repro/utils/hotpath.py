"""The ``@hot_path`` marker: declare a function as per-branch hot code.

The hot-path analyzer (:mod:`repro.lint.hotpath`) infers most of the
per-branch region from entry points and the call graph, but some
functions are hot by *role* rather than by reachability — trace
synthesis runs before any simulator entry point exists, and trace I/O
is trace-length work invoked from arbitrary callers.  Decorating them
declares the intent::

    @hot_path
    def execute(self, n_branches: int) -> BranchTrace: ...

The decorator is a zero-cost identity at runtime (it only sets a
``__hot_path__`` attribute); the lint layer reads the *decoration
syntax*, never the attribute, so linted code is still never imported.
"""

from __future__ import annotations

from typing import Callable, TypeVar

__all__ = ["hot_path"]

_F = TypeVar("_F", bound=Callable)


def hot_path(fn: _F) -> _F:
    """Mark ``fn`` as running per simulated branch (trace-scale work)."""
    fn.__hot_path__ = True
    return fn
