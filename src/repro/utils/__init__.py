"""Utility helpers shared across the :mod:`repro` package.

The submodules here are deliberately dependency-free (standard library
plus :mod:`repro.errors` only) so every other layer of the library can
import them without cycles:

* :mod:`repro.utils.bits` -- bit masks, folding, and mixing used by
  predictor index functions.
* :mod:`repro.utils.rng` -- deterministic, named random streams so that a
  single experiment seed reproduces every trace and selection decision.
* :mod:`repro.utils.hotpath` -- the ``@hot_path`` marker declaring a
  function as per-branch work for the lint hot-path analyzer.
* :mod:`repro.utils.env` -- typed environment-knob accessors; the single
  raw ``os.environ`` seam, contract-checked by lint rule ENV001 against
  the ``ENV_KNOBS`` registry in :mod:`repro.experiments.common`.
* :mod:`repro.utils.io` -- atomic file writes (``mkstemp`` +
  ``os.replace``); the single write seam for every artifact store,
  enforced by lint rules ATM001/ATM002.
* :mod:`repro.utils.tables` -- plain-text table rendering for experiment
  reports (the "tables" of the paper).
* :mod:`repro.utils.charts` -- plain-text chart rendering for experiment
  reports (the "figures" of the paper).
"""

from repro.utils.bits import bit_mask, fold_bits, is_power_of_two, log2_exact, mix64
from repro.utils.hotpath import hot_path
from repro.utils.rng import derive_rng, derive_seed

__all__ = [
    "bit_mask",
    "fold_bits",
    "is_power_of_two",
    "log2_exact",
    "mix64",
    "hot_path",
    "derive_rng",
    "derive_seed",
]
