"""Bit-manipulation helpers used by predictor index functions.

All dynamic predictors in this library index power-of-two counter tables
with some hash of the branch address and the global history register.
These helpers centralize the small amount of bit twiddling involved so the
predictor modules can stay readable.

Conventions
-----------
* Branch addresses are modelled as 64-bit values of 4-byte-aligned Alpha
  instructions, so the two least-significant address bits carry no
  information and index functions conventionally start from ``addr >> 2``.
* "Width" always means a number of bits; a table with ``2**w`` entries is
  indexed by a ``w``-bit value.
"""

from __future__ import annotations

ADDRESS_ALIGN_SHIFT = 2
"""Alpha instructions are 4-byte aligned; drop the two zero bits."""


def is_power_of_two(value: int) -> bool:
    """Return whether ``value`` is a positive power of two.

    >>> is_power_of_two(1), is_power_of_two(4096), is_power_of_two(0)
    (True, True, False)
    """
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """Return ``n`` such that ``2**n == value``.

    Raises :class:`ValueError` when ``value`` is not a power of two; table
    sizing code turns that into a :class:`repro.errors.SizingError` with
    more context.
    """
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a power of two")
    return value.bit_length() - 1


def bit_mask(width: int) -> int:
    """Return a mask selecting the low ``width`` bits.

    >>> bit_mask(3)
    7
    """
    if width < 0:
        raise ValueError(f"mask width must be non-negative, got {width}")
    return (1 << width) - 1


def fold_bits(value: int, width: int) -> int:
    """Fold an arbitrarily long value down to ``width`` bits by XOR.

    Successive ``width``-bit chunks of ``value`` are XOR-ed together.  This
    is the standard way to use a global history register that is longer
    than a table's index, and is also used to fold 64-bit addresses into
    small table indices without discarding high-order bits entirely.

    >>> fold_bits(0b101100, 3)  # 0b101 ^ 0b100
    1
    """
    if width <= 0:
        raise ValueError(f"fold width must be positive, got {width}")
    mask = (1 << width) - 1
    folded = 0
    while value:
        folded ^= value & mask
        value >>= width
    return folded


def mix64(value: int) -> int:
    """Mix the bits of a 64-bit value (SplitMix64 finalizer).

    Used when generating synthetic branch addresses so that nearby branch
    ids do not produce systematically adjacent table indices, which would
    make aliasing artificially regular.
    """
    value &= 0xFFFFFFFFFFFFFFFF
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


def reverse_bits(value: int, width: int) -> int:
    """Reverse the low ``width`` bits of ``value``.

    >>> reverse_bits(0b110, 3)
    3
    """
    result = 0
    for _ in range(width):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


def rotate_left(value: int, amount: int, width: int) -> int:
    """Rotate the low ``width`` bits of ``value`` left by ``amount``.

    >>> rotate_left(0b001, 1, 3)
    2
    """
    if width <= 0:
        raise ValueError(f"rotate width must be positive, got {width}")
    amount %= width
    mask = (1 << width) - 1
    value &= mask
    return ((value << amount) | (value >> (width - amount))) & mask
