"""Plain-text chart rendering for experiment reports.

The paper's figures are line charts (MISP/KI and collision counts versus
predictor size, Figures 1-6) and grouped bar charts (MISP/KI per predictor
and static scheme, Figures 7-13).  This module renders both as monospace
ASCII so the benchmark harness and CLI can regenerate every figure without
a plotting dependency.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["render_line_chart", "render_bar_chart"]


def _scale(value: float, lo: float, hi: float, width: int) -> int:
    """Map ``value`` in ``[lo, hi]`` to a column in ``[0, width - 1]``."""
    if hi <= lo:
        return 0
    frac = (value - lo) / (hi - lo)
    return max(0, min(width - 1, round(frac * (width - 1))))


def render_line_chart(
    x_labels: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: str | None = None,
    height: int = 12,
    y_label: str = "",
) -> str:
    """Render one or more numeric series as an ASCII line chart.

    Each series gets a distinct plotting glyph.  The x axis is categorical
    (one column group per label) which matches how the paper's figures
    treat predictor sizes (1K, 2K, ... 64K).
    """
    if not series:
        raise ValueError("at least one series is required")
    glyphs = "*o+x#@%&"
    names = list(series)
    for name in names:
        if len(series[name]) != len(x_labels):
            raise ValueError(
                f"series {name!r} has {len(series[name])} points for "
                f"{len(x_labels)} x labels"
            )
    values = [v for name in names for v in series[name]]
    lo = min(values)
    hi = max(values)
    if hi == lo:
        hi = lo + 1.0

    col_width = max(max(len(str(x)) for x in x_labels) + 2, 6)
    n_cols = len(x_labels)
    grid = [[" "] * (n_cols * col_width) for _ in range(height)]
    for s_idx, name in enumerate(names):
        glyph = glyphs[s_idx % len(glyphs)]
        for i, value in enumerate(series[name]):
            row = height - 1 - _scale(value, lo, hi, height)
            col = i * col_width + col_width // 2
            grid[row][col] = glyph

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    axis_width = 10
    for r, row in enumerate(grid):
        if r == 0:
            label = f"{hi:9.2f} "
        elif r == height - 1:
            label = f"{lo:9.2f} "
        else:
            label = " " * axis_width
        lines.append(label + "|" + "".join(row).rstrip())
    lines.append(" " * axis_width + "+" + "-" * (n_cols * col_width))
    x_line = " " * (axis_width + 1)
    for x in x_labels:
        x_line += str(x).center(col_width)
    lines.append(x_line.rstrip())
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={name}" for i, name in enumerate(names)
    )
    lines.append(" " * (axis_width + 1) + legend)
    if y_label:
        lines.append(" " * (axis_width + 1) + f"(y: {y_label})")
    return "\n".join(lines)


def render_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str | None = None,
    width: int = 50,
    value_format: str = "{:.2f}",
) -> str:
    """Render labelled values as a horizontal ASCII bar chart.

    Negative values (e.g. a static scheme that *degrades* MISP/KI
    improvement) are rendered with ``<`` bars to stay visually distinct.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        raise ValueError("at least one bar is required")
    label_width = max(len(label) for label in labels)
    magnitude = max(abs(v) for v in values) or 1.0
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for label, value in zip(labels, values):
        bar_len = round(abs(value) / magnitude * width)
        bar = ("<" if value < 0 else "#") * bar_len
        lines.append(
            f"{label.ljust(label_width)} | {bar} " + value_format.format(value)
        )
    return "\n".join(lines)
