"""Typed environment-knob accessors: the single raw ``os.environ`` seam.

Every runtime environment read in the package goes through the three
accessors here.  The knob *names* (with parser kind, default, and a
one-line description) are declared in the
:data:`repro.experiments.common.ENV_KNOBS` contract registry, and lint
rule ENV001 cross-checks the two against each other in both directions:
an accessor call naming an undeclared knob (or disagreeing with the
declared parser/default) is a finding, and so is a declared knob no
accessor ever reads.  Inline ``os.environ`` / ``os.getenv`` reads
anywhere outside this module are findings too -- that is what makes the
registry trustworthy as *the* inventory of result-influencing inputs.

This module is deliberately dependency-free (standard library plus
:mod:`repro.errors` only) so every layer -- workloads, traces, runner,
bench -- can use it without import cycles; the registry lives in
``experiments/common.py`` because that is where the knobs are
documented for users, but nothing here imports it.

An empty-string value is treated as unset everywhere: ``FOO= repro ...``
means "use the default", never "parse the empty string".

The accessors take the exception class to raise on a malformed value
(``error=``) because callers sit in different error domains: experiment
knobs raise :class:`~repro.errors.ExperimentError`, workload knobs raise
:class:`~repro.errors.WorkloadError`.
"""

from __future__ import annotations

import os

from repro.errors import ConfigurationError

__all__ = ["env_str", "env_int", "env_float"]


def _raw(name: str) -> str | None:
    """The one raw environment read (empty string counts as unset)."""
    return os.environ.get(name) or None


def env_str(name: str, default: str | None = None) -> str | None:
    """A string knob from the environment."""
    raw = _raw(name)
    return default if raw is None else raw


def env_float(
    name: str,
    default: float,
    error: type[Exception] = ConfigurationError,
) -> float:
    """A float knob from the environment."""
    raw = _raw(name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError as exc:
        raise error(f"{name} must be numeric, got {raw!r}") from exc


def env_int(
    name: str,
    default: int,
    error: type[Exception] = ConfigurationError,
) -> int:
    """An integer knob from the environment.

    Scientific notation for an exact integer (``2e5``) is accepted, but a
    fractional value (``200000.7``) is an error: silently truncating it
    would run a different experiment than the one the user asked for.
    """
    raw = _raw(name)
    if raw is None:
        return default
    value = env_float(name, float(default), error=error)
    if not value.is_integer():
        raise error(
            f"{name} must be an integer, got {raw!r} "
            f"(would silently truncate to {int(value)})"
        )
    return int(value)
