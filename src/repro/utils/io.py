"""Atomic file writes: the one ``mkstemp`` + ``os.replace`` seam.

Every artifact store in the package -- the runner's result cache, the
pinned trace store, bench snapshots, and the lint analysis cache and
baseline -- writes through :func:`atomic_write_text` (or the
:func:`atomic_write_json` convenience on top of it), so a reader can
never observe a torn file: the bytes land in a fresh temp file in the
destination directory and become visible only through the atomic
rename.  Lint rule ATM001 enforces the seam (no bare ``open(..., "w")``
in store modules) and ATM002 the companion discipline (no
exists-then-write races around it).

The temp name must be unique per *call*, not per process: thread-pool
workers share a pid, and two writers using the same temp path can
unlink each other's half-written file out from under the
``os.replace``.  ``mkstemp`` guarantees a fresh name (and an
already-open descriptor) on every call.

Failure semantics: the temp file is unlinked and the :class:`OSError`
re-raised.  Callers for whom a write is an optimization (the result
cache) catch it; callers for whom it is a commit point (the trace
store) let it propagate.
"""

from __future__ import annotations

import json
import os
import tempfile

__all__ = ["atomic_write_text", "atomic_write_json"]


def atomic_write_text(path: str, text: str, encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` atomically (temp file + rename)."""
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp",
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as stream:
            stream.write(text)
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_json(
    path: str,
    payload: object,
    *,
    sort_keys: bool = True,
    indent: int | None = None,
    encoding: str = "utf-8",
) -> None:
    """Serialize ``payload`` and write it atomically.

    Keys are sorted by default so two writers serializing the same
    payload produce identical bytes -- the property the content-digest
    checks in the trace store rely on.
    """
    text = json.dumps(payload, sort_keys=sort_keys, indent=indent)
    atomic_write_text(path, text, encoding=encoding)
