"""Atomic file writes and advisory locks: the cross-process I/O seams.

Every artifact store in the package -- the runner's result store, the
pinned trace store, bench snapshots, and the lint analysis cache and
baseline -- writes through :func:`atomic_write_text` (or the
:func:`atomic_write_json` convenience on top of it), so a reader can
never observe a torn file: the bytes land in a fresh temp file in the
destination directory and become visible only through the atomic
rename.  Lint rule ATM001 enforces the seam (no bare ``open(..., "w")``
in store modules) and ATM002 the companion discipline (no
exists-then-write races around it).

The temp name must be unique per *call*, not per process: thread-pool
workers share a pid, and two writers using the same temp path can
unlink each other's half-written file out from under the
``os.replace``.  ``mkstemp`` guarantees a fresh name (and an
already-open descriptor) on every call.

Failure semantics: the temp file is unlinked and the :class:`OSError`
re-raised.  Callers for whom a write is an optimization (the result
cache) catch it; callers for whom it is a commit point (the trace
store) let it propagate.

:func:`shard_lock` is the companion *mutual-exclusion* seam.  Atomic
replace makes any single write safe, but a read-modify-write cycle --
the sharded result store's manifest updates, eviction's
scan-then-delete -- spans multiple filesystem operations, and two
processes interleaving them lose updates even though every individual
write is atomic.  Lint rules CONC001/CONC002 enforce the discipline:
cross-process file mutation in store modules happens under a shard
lock, acquired only through ``with``, one shard at a time.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile

__all__ = ["atomic_write_text", "atomic_write_json", "shard_lock"]


def atomic_write_text(path: str, text: str, encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` atomically (temp file + rename)."""
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp",
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as stream:
            stream.write(text)
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_json(
    path: str,
    payload: object,
    *,
    sort_keys: bool = True,
    indent: int | None = None,
    encoding: str = "utf-8",
) -> None:
    """Serialize ``payload`` and write it atomically.

    Keys are sorted by default so two writers serializing the same
    payload produce identical bytes -- the property the content-digest
    checks in the trace store rely on.
    """
    text = json.dumps(payload, sort_keys=sort_keys, indent=indent)
    atomic_write_text(path, text, encoding=encoding)


@contextlib.contextmanager
def shard_lock(path: str):
    """Hold an exclusive advisory lock on ``path`` (created if absent).

    The lock serializes read-modify-write cycles on one store shard
    across processes: manifest updates, eviction's scan-then-delete,
    and corrupt-entry removal.  It is advisory (``fcntl.flock``), so it
    only coordinates writers that also take it -- which is exactly what
    lint rule CONC001 proves about the store modules.

    Degradation is deliberate and safe-by-construction: on platforms
    without ``fcntl`` (or filesystems refusing ``flock``) the context
    still runs, unlocked.  Every write inside a locked region must
    therefore *also* go through the atomic-replace seam, so losing the
    lock can lose an LRU stamp or an eviction race, never produce a
    torn file.
    """
    try:
        import fcntl
    except ImportError:  # pragma: no cover - non-POSIX platforms
        fcntl = None
    fd = None
    try:
        try:
            fd = os.open(path, os.O_CREAT | os.O_RDWR)
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_EX)
        except OSError:
            # Advisory: an unlockable shard degrades to atomic-writes-
            # only coordination instead of failing the simulation.
            pass
        yield
    finally:
        if fd is not None:
            if fcntl is not None:
                try:
                    fcntl.flock(fd, fcntl.LOCK_UN)
                except OSError:  # pragma: no cover - release is best-effort
                    pass
            os.close(fd)
