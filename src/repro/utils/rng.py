"""Deterministic, named random streams.

Every source of randomness in the library -- synthetic branch addresses,
behaviour-model draws, routine interleaving, train/ref drift -- derives
its own :class:`random.Random` instance from a root seed plus a tuple of
string/int names.  Two properties follow:

1. **Reproducibility**: an experiment is fully determined by its root
   seed.  Re-running any experiment with the same seed replays the exact
   same branch trace and therefore the exact same misprediction counts.
2. **Independence under extension**: adding a new consumer of randomness
   (say, a new behaviour class) does not perturb the streams of existing
   consumers, because each stream is keyed by name rather than by draw
   order.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["derive_seed", "derive_rng", "rng_from_seed"]


def derive_seed(root: int, *names: object) -> int:
    """Derive a 64-bit child seed from ``root`` and a path of names.

    The derivation hashes the textual path, so it is stable across Python
    versions and process invocations (unlike ``hash()``).

    >>> derive_seed(1, "go", "train") == derive_seed(1, "go", "train")
    True
    >>> derive_seed(1, "go", "train") != derive_seed(1, "go", "ref")
    True
    """
    text = repr((int(root),) + tuple(str(n) for n in names))
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def derive_rng(root: int, *names: object) -> random.Random:
    """Return a fresh :class:`random.Random` for the named stream."""
    return random.Random(derive_seed(root, *names))


def rng_from_seed(seed: int) -> random.Random:
    """Return a :class:`random.Random` for an already-derived seed.

    The second half of the named-stream mechanism: code that *stores* a
    :func:`derive_seed` result (e.g. a declarative site plan that must
    stay a frozen dataclass of ints) reconstructs its stream here
    instead of instantiating ``random.Random`` directly, keeping this
    module the single place randomness enters the library (enforced by
    ``repro lint`` rule DET001).
    """
    return random.Random(seed)
