"""Plain-text table rendering for experiment reports.

The paper reports most results as tables (Tables 1-5).  Experiment runners
in :mod:`repro.experiments` return structured result objects; this module
renders them as aligned monospace tables for the CLI, the benchmark
harness, and EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

__all__ = [
    "render_table",
    "format_value",
    "format_percent",
    "format_float",
    "format_improvement",
]


def format_float(value: float, digits: int = 2) -> str:
    """Format a float with a fixed number of decimal digits."""
    return f"{value:.{digits}f}"


def format_percent(value: float, digits: int = 1) -> str:
    """Format a fraction in [0, 1] (or a signed ratio) as a percentage.

    >>> format_percent(0.759)
    '75.9%'
    >>> format_percent(-0.014)
    '-1.4%'
    """
    return f"{value * 100:.{digits}f}%"


def format_improvement(gain: float, digits: int = 1) -> str:
    """Format a signed improvement fraction as an explicit percentage.

    Spells out the ``-inf`` sentinel :func:`repro.core.metrics.improvement`
    returns when a run regresses against a zero-misprediction baseline.

    >>> format_improvement(0.142)
    '+14.2%'
    >>> format_improvement(float("-inf"))
    'worse (0-MISP base)'
    """
    if not math.isfinite(gain):
        return "worse (0-MISP base)" if gain < 0 else "better (inf)"
    return f"{gain * 100:+.{digits}f}%"


def format_value(value: object) -> str:
    """Render an arbitrary cell value with sensible defaults."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format_float(value)
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table.

    ``rows`` may contain any values; they are formatted with
    :func:`format_value`.  The first column is left-aligned, remaining
    columns right-aligned, matching the conventions of the paper's tables
    (program name first, numbers after).

    >>> print(render_table(["prog", "MISP/KI"], [["gcc", 12.5]]))
    prog | MISP/KI
    -----+--------
    gcc  |   12.50
    """
    rendered_rows = [[format_value(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if i == 0:
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.rjust(widths[i]))
        return " | ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_line(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)
