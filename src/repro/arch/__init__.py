"""Minimal Alpha-like architecture substrate.

The paper runs Alpha binaries under the Atom instrumentation tool; only
two architectural facts actually reach the branch-prediction study:

* conditional branches have 4-byte-aligned instruction addresses that
  index predictor tables, and
* conditional-branch instructions can carry **static hint bits** (the
  paper assumes the two IA-64-style bits: "use the static prediction" and
  "predicted direction", plus an optional third bit controlling whether
  the branch's outcome is shifted into the global history register).

This subpackage models exactly that: :mod:`repro.arch.isa` defines the
hint-bit encoding, and :mod:`repro.arch.program` defines a program as a
set of static conditional-branch sites with addresses.
"""

from repro.arch.isa import HintBits, ShiftPolicy
from repro.arch.program import BranchSite, Program

__all__ = ["HintBits", "ShiftPolicy", "BranchSite", "Program"]
