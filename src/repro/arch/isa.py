"""Instruction-set-level modelling of static branch hints.

Section 4 of the paper assumes "two bits of static prediction hint similar
to those available in Intel's upcoming IA-64 processor": one bit carries
the static prediction itself (the *static sub-component*), the other tells
the hardware whether to use it (the *static meta-predictor*).  Section 4
further notes that whether a statically predicted branch's outcome is
shifted into the global history register can be controlled "on a per
application basis using an architectural flag or on a per branch basis
using one extra hint bit"; we model both granularities.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["ShiftPolicy", "HintBits", "INSTRUCTION_BYTES"]

INSTRUCTION_BYTES = 4
"""Alpha instructions are 4 bytes; branch addresses step by this amount."""


class ShiftPolicy(enum.Enum):
    """How statically predicted branches interact with global history.

    ``NO_SHIFT`` reproduces the paper's default ("unless otherwise noted,
    we did not shift outcomes of statically predicted branches in the
    global history register").  ``SHIFT`` reproduces the Table 4 "Shift"
    columns.  ``PER_BRANCH`` defers to each branch's own hint bit,
    modelling the extra per-branch hint bit the paper proposes.
    """

    NO_SHIFT = "no_shift"
    SHIFT = "shift"
    PER_BRANCH = "per_branch"


@dataclass(frozen=True, slots=True)
class HintBits:
    """Static hint bits attached to one conditional-branch instruction.

    Attributes
    ----------
    use_static:
        The static meta-predictor bit.  When clear, the branch is
        predicted dynamically and the other bits are ignored.
    direction:
        The static prediction: ``True`` = predicted taken.
    shift_history:
        The optional per-branch bit saying whether this branch's resolved
        outcome should be shifted into the global history register when it
        is statically predicted.  Only consulted when the combined
        predictor runs under :attr:`ShiftPolicy.PER_BRANCH`.
    """

    use_static: bool = False
    direction: bool = False
    shift_history: bool = False

    @classmethod
    def dynamic(cls) -> "HintBits":
        """Hints for a branch left entirely to the dynamic predictor."""
        return cls(use_static=False, direction=False, shift_history=False)

    @classmethod
    def static(cls, direction: bool, shift_history: bool = False) -> "HintBits":
        """Hints for a statically predicted branch."""
        return cls(use_static=True, direction=direction, shift_history=shift_history)

    def encode(self) -> int:
        """Pack the hints into the low 3 bits of an int (for trace files)."""
        return (
            (1 if self.use_static else 0)
            | ((1 if self.direction else 0) << 1)
            | ((1 if self.shift_history else 0) << 2)
        )

    @classmethod
    def decode(cls, bits: int) -> "HintBits":
        """Inverse of :meth:`encode`."""
        return cls(
            use_static=bool(bits & 1),
            direction=bool(bits & 2),
            shift_history=bool(bits & 4),
        )
