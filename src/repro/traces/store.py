"""The on-disk trace store: content-digested pinned artifacts.

A :class:`TraceStore` maps :class:`~repro.traces.spec.TraceSpec` records
to artifacts under one root directory (``REPRO_TRACE_DIR`` or
``.repro-traces``).  Each artifact is named by the spec's name plus a
prefix of its :meth:`~repro.traces.spec.TraceSpec.spec_digest`, so
recipes that would generate different traces can never collide on a
path, and sits next to a JSON **manifest** recording the full spec
identity, the trace's content digest, and its branch/instruction
counts.

Integrity is checked at every boundary:

* ``generate`` refuses to write an artifact whose content digest
  differs from the spec's pinned expectation;
* ``load`` re-digests the loaded trace and compares it against the
  manifest (and the pin), so a corrupt, tampered, or drifted artifact
  raises :class:`~repro.errors.TraceSuiteError` instead of silently
  feeding wrong bytes to an experiment;
* ``verify`` runs the same checks read-only for the CLI/CI gate.

Manifests are written atomically through the shared
:mod:`repro.utils.io` seam (fresh ``mkstemp`` + ``os.replace``),
matching the result cache's discipline.
"""

from __future__ import annotations

import json
import os

from repro.errors import TraceSuiteError
from repro.traces.spec import SUITE_FORMAT_VERSION, TraceSpec
from repro.utils.env import env_str
from repro.utils.io import atomic_write_json
from repro.workloads.trace import BranchTrace

__all__ = ["ENV_TRACE_DIR", "TraceStore", "default_trace_dir"]

ENV_TRACE_DIR = "REPRO_TRACE_DIR"


def default_trace_dir() -> str:
    """The store root used when the caller does not name one."""
    return env_str(ENV_TRACE_DIR) or ".repro-traces"


class TraceStore:
    """Generate, load, and verify pinned trace artifacts."""

    def __init__(self, root: str | None = None):
        self.root = root if root is not None else default_trace_dir()

    # -- paths -----------------------------------------------------------

    def _base(self, spec: TraceSpec) -> str:
        return os.path.join(self.root, f"{spec.name}-{spec.spec_digest()[:12]}")

    def artifact_path(self, spec: TraceSpec) -> str:
        """Where the spec's trace bytes live (file for npz, dir for memmap)."""
        base = self._base(spec)
        return base + ".npz" if spec.fmt == "npz" else base + ".trace.d"

    def manifest_path(self, spec: TraceSpec) -> str:
        return self._base(spec) + ".json"

    def exists(self, spec: TraceSpec) -> bool:
        """Whether both the artifact and its manifest are present."""
        return (os.path.exists(self.artifact_path(spec))
                and os.path.exists(self.manifest_path(spec)))

    # -- manifests -------------------------------------------------------

    def manifest(self, spec: TraceSpec) -> dict | None:
        """The spec's manifest, or ``None`` when not generated yet."""
        try:
            with open(self.manifest_path(spec), "r", encoding="utf-8") as stream:
                manifest = json.load(stream)
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as exc:
            raise TraceSuiteError(
                f"corrupt trace manifest {self.manifest_path(spec)!r}: {exc}"
            ) from exc
        if manifest.get("spec_digest") != spec.spec_digest():
            raise TraceSuiteError(
                f"trace manifest {self.manifest_path(spec)!r} was written "
                f"for a different recipe (spec digest "
                f"{manifest.get('spec_digest')!r}, expected "
                f"{spec.spec_digest()!r})"
            )
        return manifest

    def _write_manifest(self, spec: TraceSpec, manifest: dict) -> None:
        # The manifest is the artifact's commit point, so unlike the
        # result cache a failed write propagates: a generate that cannot
        # record its manifest has not generated anything.
        atomic_write_json(self.manifest_path(spec), manifest, indent=2)

    # -- generation ------------------------------------------------------

    def generate(self, spec: TraceSpec, force: bool = False) -> dict:
        """Build the spec's trace, write the artifact, return the manifest.

        Already-generated artifacts are left untouched unless ``force``
        is set.  A pinned spec whose freshly-generated trace digests
        differently fails *before* anything is written: nothing
        downstream ever sees a trace that contradicts the registry.
        """
        if not force:
            manifest = self.manifest(spec)
            if manifest is not None and os.path.exists(self.artifact_path(spec)):
                return manifest
        trace = spec.build_trace()
        digest = trace.content_digest()
        if spec.pinned_digest is not None and digest != spec.pinned_digest:
            raise TraceSuiteError(
                f"generated trace for spec {spec.name!r} has content digest "
                f"{digest} but the suite pins {spec.pinned_digest}; the "
                "workload models or RNG derivation changed -- if intended, "
                "update the pinned digest in the suite registry"
            )
        os.makedirs(self.root, exist_ok=True)
        artifact = self.artifact_path(spec)
        if spec.fmt == "npz":
            trace.save_npz(artifact)
        else:
            trace.save_memmap(artifact)
        manifest = {
            "format_version": SUITE_FORMAT_VERSION,
            "spec": spec.identity(),
            "spec_digest": spec.spec_digest(),
            "content_digest": digest,
            "branches": len(trace),
            "instructions": trace.instruction_count,
        }
        self._write_manifest(spec, manifest)
        return manifest

    # -- loading ---------------------------------------------------------

    def load(self, spec: TraceSpec, materialize: bool = True) -> BranchTrace:
        """Load the spec's pinned artifact, verifying its content digest.

        Raises :class:`TraceSuiteError` when the artifact has not been
        generated (pointing at ``repro traces generate``) or when the
        loaded bytes do not digest to what the manifest -- and, for
        pinned specs, the registry -- promise.
        """
        manifest = self.manifest(spec)
        if manifest is None or not os.path.exists(self.artifact_path(spec)):
            raise TraceSuiteError(
                f"pinned trace {spec.name!r} has not been generated in "
                f"store {self.root!r}; run `repro traces generate`"
            )
        artifact = self.artifact_path(spec)
        if spec.fmt == "npz":
            trace = BranchTrace.load_npz(artifact)
        else:
            trace = BranchTrace.load_memmap(artifact, materialize=materialize)
        digest = trace.content_digest()
        expected = manifest.get("content_digest")
        if digest != expected:
            raise TraceSuiteError(
                f"pinned trace artifact {artifact!r} digests to {digest} "
                f"but its manifest records {expected!r}; the artifact is "
                "corrupt or was modified -- regenerate with "
                "`repro traces generate --force`"
            )
        if spec.pinned_digest is not None and digest != spec.pinned_digest:
            raise TraceSuiteError(
                f"pinned trace artifact {artifact!r} digests to {digest} "
                f"but the suite pins {spec.pinned_digest}; regenerate with "
                "`repro traces generate --force`"
            )
        return trace

    def ensure(self, spec: TraceSpec, materialize: bool = True) -> BranchTrace:
        """Load the spec's artifact, generating it first when missing."""
        if not self.exists(spec):
            self.generate(spec)
        return self.load(spec, materialize=materialize)

    def content_digest(self, spec: TraceSpec) -> str:
        """The generated artifact's content digest, from its manifest."""
        manifest = self.manifest(spec)
        if manifest is None:
            raise TraceSuiteError(
                f"pinned trace {spec.name!r} has not been generated in "
                f"store {self.root!r}; run `repro traces generate`"
            )
        digest = manifest.get("content_digest")
        if not isinstance(digest, str) or not digest:
            raise TraceSuiteError(
                f"trace manifest {self.manifest_path(spec)!r} records no "
                "content digest; regenerate with `repro traces generate "
                "--force`"
            )
        return digest

    # -- verification ----------------------------------------------------

    def verify(self, spec: TraceSpec) -> list[str]:
        """Read-only integrity check; returns problems (empty = ok)."""
        problems: list[str] = []
        try:
            manifest = self.manifest(spec)
        except TraceSuiteError as exc:
            return [str(exc)]
        if manifest is None:
            return [f"not generated (expected {self.artifact_path(spec)})"]
        if not os.path.exists(self.artifact_path(spec)):
            return [f"manifest present but artifact missing: "
                    f"{self.artifact_path(spec)}"]
        if manifest.get("format_version") != SUITE_FORMAT_VERSION:
            problems.append(
                f"manifest format_version {manifest.get('format_version')!r} "
                f"!= {SUITE_FORMAT_VERSION}"
            )
        try:
            self.load(spec)
        except Exception as exc:
            # A verify pass reports *any* load failure (format errors,
            # digest mismatches, truncated files) rather than crash.
            problems.append(str(exc))
        return problems
