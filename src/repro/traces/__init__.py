"""Pinned trace suites: versioned, content-digested replay artifacts.

The paper's comparisons only mean something when every configuration
sees the *same* dynamic branch stream.  This package freezes those
streams: a :class:`~repro.traces.spec.TraceSpec` pins a generation
recipe, a :class:`~repro.traces.registry.TraceSuite` names a set of
them, and a :class:`~repro.traces.store.TraceStore` materializes them
as content-digested on-disk artifacts (compressed npz, or memmap-backed
columns for traces too large to hold as Python lists).

Replay integration: construct an
:class:`~repro.experiments.common.ExperimentContext` with
``trace_suite=`` (or set ``REPRO_TRACE_SUITE``) and every
``ctx.trace()`` resolves through the suite to a pinned artifact instead
of regenerating; the artifact's content digest is folded into the
result-cache key (see :meth:`repro.runner.cells.Cell.key_fields`), so
pinned and regenerated results can never alias in the cache.

CLI: ``repro traces generate|list|verify|info``.
"""

from repro.traces.registry import (
    TraceSuite,
    get_suite,
    register_suite,
    suite_names,
)
from repro.traces.spec import SUITE_FORMAT_VERSION, TRACE_FORMATS, TraceSpec
from repro.traces.store import ENV_TRACE_DIR, TraceStore, default_trace_dir

__all__ = [
    "ENV_TRACE_DIR",
    "SUITE_FORMAT_VERSION",
    "TRACE_FORMATS",
    "TraceSpec",
    "TraceStore",
    "TraceSuite",
    "default_trace_dir",
    "get_suite",
    "register_suite",
    "suite_names",
]
