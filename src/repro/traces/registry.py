"""Named trace suites: the registry of pinned generation recipes.

A :class:`TraceSuite` is an ordered collection of :class:`TraceSpec`
records under one name.  Two suites ship with the library:

``quick``
    The CI suite: every SPECINT95 program x {train, ref} at the CI
    scale knobs (20k branches, site scale 0.05, seed 42), plus one
    memmap-format artifact exercising the large-trace path.  Every
    quick spec carries a **pinned content digest** computed when the
    suite was first generated; regeneration that produces different
    bytes (a workload-model or RNG change) fails loudly instead of
    silently shifting every downstream number.

``default``
    The full-scale suite matching the experiment defaults (200k
    branches, site scale 0.125, seed 42).  Its specs are unpinned --
    the digest is recorded in each artifact's manifest at generation
    time and verified on load, so integrity is still checked; only the
    cross-machine expectation is omitted to keep regeneration of the
    heavyweight suite from requiring a registry edit after intentional
    model changes.

Suites are looked up by name (e.g. from ``REPRO_TRACE_SUITE``); replay
resolves a context's ``(program, input, length, seed, site_scale)`` to
a spec via :meth:`TraceSuite.lookup`.
"""

from __future__ import annotations

from repro.errors import TraceSuiteError
from repro.traces.spec import TraceSpec
from repro.workloads.spec95 import PROGRAM_ORDER

__all__ = [
    "TraceSuite",
    "get_suite",
    "register_suite",
    "suite_names",
]

_QUICK_LENGTH = 20_000
_QUICK_SITE_SCALE = 0.05
_DEFAULT_LENGTH = 200_000
_DEFAULT_SITE_SCALE = 0.125
_SEED = 42

#: Content digests of the quick suite's traces, computed once from the
#: generators at suite-introduction time.  These freeze the synthetic
#: workload models: if a change to :mod:`repro.workloads` alters any
#: generated stream, ``repro traces generate``/``verify`` fail with a
#: digest mismatch and the change has to be made deliberately (bump the
#: digests alongside the model change).
_QUICK_DIGESTS = {
    "quick-go-train": "36c8a0ec726648f0277bb7015b7d47f1812297576c3add86788b8c01977dc4e1",
    "quick-go-ref": "50b1a36391a0a1cec5e7a11e4abbc6694ef417748f83311b5cfec8e69184dcc1",
    "quick-gcc-train": "137eff925a805e2626aec2a6c9944723201126cd46fe312dab75a9eeb56ec3b6",
    "quick-gcc-ref": "5c15f72a49a4e08146725402988bc2d00a5e4d7c002d9a2b849f515ba8a1929a",
    "quick-perl-train": "126c5cda07219f516dfd833da952ff953a2ce8bcfbbab25efc9525addf19780b",
    "quick-perl-ref": "1fbcc741b07af35a573f078c244cffd7ed8e3e365a4ea270e1d47982d8e61d38",
    "quick-m88ksim-train": "817fbd30823949e64d1031b4fd4e41ab3a34395746ed274a2b9294b290702725",
    "quick-m88ksim-ref": "ae1ab462b55756116362c17f78977d6139698035a130b5b3ca11c4bf109c68b4",
    "quick-compress-train": "de22bcf22c4c78f531f6ff20a74681344839b6b8df663f520252762fe15fa685",
    "quick-compress-ref": "fb3b760fbc2c609754936ff8f3c7f0beeaad148f9cc3c309e6c8a40704ef377d",
    "quick-ijpeg-train": "b9e59dbfa8e0d5f4fe30910db7985641433bb42bc98e0be16c2c55dcd526062c",
    "quick-ijpeg-ref": "e3788636759035f6429d7b79f5da9f5c10f768afc964070f26373b127aa04b49",
    # Same recipe as quick-gcc-ref apart from the on-disk format, and
    # the content digest is format-independent by construction -- the
    # matching value is itself a regression check.
    "quick-gcc-ref-memmap": "5c15f72a49a4e08146725402988bc2d00a5e4d7c002d9a2b849f515ba8a1929a",
}


class TraceSuite:
    """An ordered, name-addressable collection of trace specs."""

    def __init__(self, name: str, specs: tuple[TraceSpec, ...],
                 description: str = ""):
        self.name = name
        self.specs = tuple(specs)
        self.description = description
        seen: set[str] = set()
        for spec in self.specs:
            if spec.name in seen:
                raise TraceSuiteError(
                    f"suite {name!r} has duplicate spec name {spec.name!r}"
                )
            seen.add(spec.name)

    def __iter__(self):
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def get(self, spec_name: str) -> TraceSpec:
        """The spec with the given name; raise if unknown."""
        for spec in self.specs:
            if spec.name == spec_name:
                return spec
        raise TraceSuiteError(
            f"suite {self.name!r} has no spec named {spec_name!r}"
        )

    def lookup(self, program: str, input_name: str, length: int,
               seed: int, site_scale: float) -> TraceSpec | None:
        """The first spec matching those generation knobs, or ``None``.

        Declaration order breaks ties, so when a recipe is pinned in
        both npz and memmap form the suite decides which one replay
        loads (list the preferred format first).
        """
        for spec in self.specs:
            if spec.matches(program, input_name, length, seed, site_scale):
                return spec
        return None


def _quick_specs() -> tuple[TraceSpec, ...]:
    specs = [
        TraceSpec(
            name=f"quick-{program}-{input_name}",
            program=program,
            input_name=input_name,
            length=_QUICK_LENGTH,
            seed=_SEED,
            site_scale=_QUICK_SITE_SCALE,
            fmt="npz",
            pinned_digest=_QUICK_DIGESTS[f"quick-{program}-{input_name}"] or None,
        )
        for program in PROGRAM_ORDER
        for input_name in ("train", "ref")
    ]
    specs.append(
        TraceSpec(
            name="quick-gcc-ref-memmap",
            program="gcc",
            input_name="ref",
            length=_QUICK_LENGTH,
            seed=_SEED,
            site_scale=_QUICK_SITE_SCALE,
            fmt="memmap",
            pinned_digest=_QUICK_DIGESTS["quick-gcc-ref-memmap"] or None,
        )
    )
    return tuple(specs)


def _default_specs() -> tuple[TraceSpec, ...]:
    return tuple(
        TraceSpec(
            name=f"default-{program}-{input_name}",
            program=program,
            input_name=input_name,
            length=_DEFAULT_LENGTH,
            seed=_SEED,
            site_scale=_DEFAULT_SITE_SCALE,
            fmt="npz",
        )
        for program in PROGRAM_ORDER
        for input_name in ("train", "ref")
    )


_SUITES: dict[str, TraceSuite] = {}


def register_suite(suite: TraceSuite, replace: bool = False) -> TraceSuite:
    """Add a suite to the registry (tests and downstream extensions)."""
    if suite.name in _SUITES and not replace:
        raise TraceSuiteError(f"trace suite {suite.name!r} already registered")
    _SUITES[suite.name] = suite
    return suite


register_suite(TraceSuite(
    "quick", _quick_specs(),
    description="CI-scale pinned suite (20k branches, site scale 0.05)",
))
register_suite(TraceSuite(
    "default", _default_specs(),
    description="Experiment-default suite (200k branches, site scale 0.125)",
))


def suite_names() -> tuple[str, ...]:
    """Registered suite names, in registration order."""
    return tuple(_SUITES)


def get_suite(name: "str | TraceSuite") -> TraceSuite:
    """Resolve a suite by name; :class:`TraceSuite` instances pass through."""
    if isinstance(name, TraceSuite):
        return name
    suite = _SUITES.get(name)
    if suite is None:
        raise TraceSuiteError(
            f"unknown trace suite {name!r} (registered: "
            f"{', '.join(sorted(_SUITES))})"
        )
    return suite
