"""Trace specifications: the generation recipe a pinned artifact freezes.

A :class:`TraceSpec` names everything that determines a synthetic trace
bit-for-bit: the workload model (program + input), the root seed, the
site scale, and the trace length.  Its :meth:`~TraceSpec.build_trace`
reproduces exactly what :meth:`repro.experiments.common.ExperimentContext.trace`
would generate for the same knobs (``build_workload(...).execute(length,
run_seed=1)``), which is what makes pinned replay bit-identical to
regeneration.

Two digests with different jobs:

* :meth:`TraceSpec.spec_digest` hashes the *recipe* (this class's
  identity fields).  It names the on-disk artifact, so two specs that
  would generate different traces can never collide on a path.
* :meth:`repro.workloads.trace.BranchTrace.content_digest` hashes the
  *data*.  It is recorded in the artifact manifest at generation time,
  optionally pinned in the suite registry, and folded into result-cache
  keys by the replay integration.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.errors import TraceSuiteError
from repro.workloads.generator import build_workload
from repro.workloads.spec95 import get_spec
from repro.workloads.trace import BranchTrace

__all__ = ["SUITE_FORMAT_VERSION", "TRACE_FORMATS", "TraceSpec"]

#: Version of the suite/manifest schema.  Bump when the identity fields,
#: manifest layout, or digest recipe change; artifacts generated under a
#: different version never match and must be regenerated.
SUITE_FORMAT_VERSION = 1

#: Supported on-disk artifact formats.
TRACE_FORMATS = ("npz", "memmap")


@dataclass(frozen=True, slots=True)
class TraceSpec:
    """One pinned trace: a named, fully-determined generation recipe.

    ``pinned_digest`` is optional: when set, generation fails loudly if
    the freshly-built trace's content digest differs (the workload
    models or RNG derivation changed), turning silent drift into an
    error.  It is an *expectation about* the artifact, not part of the
    recipe, so it is excluded from :meth:`spec_digest`.
    """

    name: str
    program: str
    input_name: str
    length: int
    seed: int
    site_scale: float
    fmt: str = "npz"
    pinned_digest: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise TraceSuiteError("trace spec name must be non-empty")
        if self.fmt not in TRACE_FORMATS:
            raise TraceSuiteError(
                f"trace spec {self.name!r} has unsupported format "
                f"{self.fmt!r} (expected one of {TRACE_FORMATS})"
            )
        if self.length <= 0:
            raise TraceSuiteError(
                f"trace spec {self.name!r} length must be positive, "
                f"got {self.length}"
            )

    def identity(self) -> dict:
        """The recipe fields, as a canonical JSON-ready mapping."""
        return {
            "version": SUITE_FORMAT_VERSION,
            "name": self.name,
            "program": self.program,
            "input_name": self.input_name,
            "length": self.length,
            "seed": self.seed,
            "site_scale": self.site_scale,
            "fmt": self.fmt,
        }

    def spec_digest(self) -> str:
        """SHA-256 of the canonical recipe; names the on-disk artifact."""
        canonical = json.dumps(self.identity(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def matches(self, program: str, input_name: str, length: int,
                seed: int, site_scale: float) -> bool:
        """Whether this spec pins the trace those context knobs generate."""
        return (
            self.program == program
            and self.input_name == input_name
            and self.length == length
            and self.seed == seed
            and self.site_scale == site_scale
        )

    def build_trace(self) -> BranchTrace:
        """Generate the trace this spec describes, from scratch.

        Mirrors ``ExperimentContext.trace`` exactly: the workload is
        built from the program's SPECINT95 model with this spec's root
        seed and site scale, and executed with ``run_seed=1``.  Any
        divergence here would break the replay-equals-regeneration
        bit-identity contract.
        """
        workload = build_workload(
            get_spec(self.program), self.input_name,
            root_seed=self.seed, site_scale=self.site_scale,
        )
        return workload.execute(self.length, run_seed=1)

    def describe(self) -> str:
        """One human-readable line for CLI listings."""
        return (
            f"{self.name}: {self.program}/{self.input_name} "
            f"length={self.length} seed={self.seed} "
            f"site_scale={self.site_scale} fmt={self.fmt}"
            + (" [pinned]" if self.pinned_digest else "")
        )
