"""Per-branch collision involvement profiling.

The paper closes its Figures 1-6 discussion with a future-work idea:
"This does, however, suggest another way of selecting branches for
static prediction: we want to predict only those branches statically
that will boost constructive collisions and reduce destructive
collisions.  We plan to explore this idea in the future."

Exploring it needs per-branch collision attribution, which this module
provides.  During a phase-one simulation, every counter lookup is tag
checked (as in the paper's collision instrumentation); on a collision we
know both parties:

* the **victim** -- the branch performing the lookup, and
* the **aggressor** -- the branch whose address the tag held (the last
  previous user of the counter).

When the victim's overall prediction turns out wrong the collision is
destructive and both parties are charged; when right, both are credited
as constructive.  A branch's *destructive involvement rate* (destructive
charges per execution) measures how much aliasing pain statically
predicting it could remove -- the signal the
``select_static_collision`` scheme ranks on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.predictors.base import BranchPredictor
from repro.workloads.trace import BranchTrace

__all__ = ["CollisionInvolvement", "CollisionProfile", "measure_collision_involvement"]


@dataclass(slots=True)
class CollisionInvolvement:
    """Collision statistics for one branch (as victim or aggressor)."""

    executions: int = 0
    destructive: int = 0
    constructive: int = 0

    @property
    def destructive_rate(self) -> float:
        """Destructive involvements per execution."""
        if self.executions == 0:
            return 0.0
        return self.destructive / self.executions

    @property
    def constructive_rate(self) -> float:
        """Constructive involvements per execution."""
        if self.executions == 0:
            return 0.0
        return self.constructive / self.executions


class CollisionProfile:
    """Per-branch collision involvement over one run."""

    def __init__(
        self,
        program_name: str,
        input_name: str,
        predictor_name: str,
        branches: Mapping[int, CollisionInvolvement] | None = None,
    ):
        self.program_name = program_name
        self.input_name = input_name
        self.predictor_name = predictor_name
        self.branches: dict[int, CollisionInvolvement] = dict(branches or {})

    def __len__(self) -> int:
        return len(self.branches)

    def get(self, address: int) -> CollisionInvolvement | None:
        """Involvement record for an address, or None if never executed."""
        return self.branches.get(address)

    def destructive_rate_of(self, address: int) -> float:
        """Destructive involvement rate; 0.0 for branches never seen."""
        record = self.branches.get(address)
        return record.destructive_rate if record is not None else 0.0

    @property
    def total_destructive(self) -> int:
        """Sum of destructive charges across all branches."""
        return sum(r.destructive for r in self.branches.values())


def measure_collision_involvement(
    trace: BranchTrace, predictor: BranchPredictor
) -> CollisionProfile:
    """Simulate ``predictor`` over ``trace``, attributing every collision
    to its victim and aggressor.

    The predictor is consumed (trained) by the measurement; pass a fresh
    instance.

    Kernel-backed predictor families take a vectorized path: the
    per-event counter indices come from
    :func:`repro.kernels.try_fast_indices` (snapshotted *before* the
    prediction kernel advances the history register), the previous user
    of each counter from one stable sort over those indices, and the
    per-branch charges from bincounts.  Bit-identical to the reference
    loop below, including the profile's first-occurrence insertion
    order.
    """
    records = _fast_collision_records(trace, predictor)
    if records is None:
        return _measure_collision_involvement_scalar(trace, predictor)
    return CollisionProfile(
        trace.program_name, trace.input_name, predictor.name, records
    )


def _fast_collision_records(
    trace: BranchTrace, predictor: BranchPredictor
) -> dict[int, CollisionInvolvement] | None:
    """Vectorized victim/aggressor attribution, or None (no kernel).

    The single-table families access exactly one counter per event (the
    index the kernels compute), so the scalar loop's tag array reduces
    to "the previous event with my index": a stable argsort groups
    events by index, and within a group each event's predecessor held
    the tag.  A collision is a predecessor with a different address;
    the victim and that one aggressor are each charged once, on the
    victim's correctness.
    """
    from repro.kernels import try_fast_indices, try_fast_predictions

    indices = try_fast_indices(trace, predictor)
    if indices is None:
        return None
    predictions = try_fast_predictions(trace, predictor)
    if predictions is None:
        # Dispatch and guards match try_fast_indices, so this cannot
        # happen today -- but the index snapshot is pure, so falling
        # back to the reference loop stays correct if it ever does.
        return None
    import numpy

    addresses, outcomes = trace.arrays()
    n = addresses.shape[0]
    if n == 0:
        return {}
    correct = predictions == outcomes

    # Previous user of each event's counter (-1 = counter untouched).
    sidx = numpy.argsort(indices, kind="stable")
    same = indices[sidx[1:]] == indices[sidx[:-1]]
    prev = numpy.full(n, -1, dtype=sidx.dtype)
    prev[sidx[1:][same]] = sidx[:-1][same]
    colliding = (prev >= 0) & (addresses[prev] != addresses)

    # Factorize addresses into ids ranked by first occurrence, so the
    # records dict below iterates in the scalar loop's insertion order
    # (an aggressor always executed before its victim, so first
    # executions are the only insertions).
    saddr = numpy.argsort(addresses)
    sorted_addr = addresses[saddr]
    starts = numpy.flatnonzero(
        numpy.r_[True, sorted_addr[1:] != sorted_addr[:-1]]
    )
    groups = starts.shape[0]
    first = numpy.minimum.reduceat(saddr, starts)
    order = numpy.argsort(first, kind="stable")
    rank = numpy.empty(groups, dtype=numpy.int64)
    rank[order] = numpy.arange(groups)
    group_of_sorted = numpy.cumsum(
        numpy.r_[False, sorted_addr[1:] != sorted_addr[:-1]]
    )
    ids = numpy.empty(n, dtype=numpy.int64)
    ids[saddr] = rank[group_of_sorted]

    executions = numpy.bincount(ids, minlength=groups)
    col = numpy.flatnonzero(colliding)
    col_correct = correct[col]
    victim_ids = ids[col]
    aggressor_ids = ids[prev[col]]
    constructive = (
        numpy.bincount(victim_ids[col_correct], minlength=groups)
        + numpy.bincount(aggressor_ids[col_correct], minlength=groups)
    )
    destructive = (
        numpy.bincount(victim_ids[~col_correct], minlength=groups)
        + numpy.bincount(aggressor_ids[~col_correct], minlength=groups)
    )
    return {
        address: CollisionInvolvement(
            executions=e, destructive=d, constructive=c
        )
        for address, e, d, c in zip(
            sorted_addr[starts][order].tolist(),
            executions.tolist(),
            destructive.tolist(),
            constructive.tolist(),
        )
    }


def _measure_collision_involvement_scalar(
    trace: BranchTrace, predictor: BranchPredictor
) -> CollisionProfile:
    """Reference loop (kernel-less predictors, and the differential baseline)."""
    records: dict[int, CollisionInvolvement] = {}
    tags: list[list[int]] = [
        [-1] * entries for entries in predictor.table_entry_counts()
    ]
    predict = predictor.predict
    update = predictor.update
    accessed = predictor.accessed
    addresses = trace.addresses
    outcomes = trace.outcomes

    # repro: allow[PERF001] -- the numpy-free fallback and correctness
    # reference; kernel-backed families take the vectorized path above,
    # which is differentially tested against this loop
    for i in range(len(addresses)):
        address = addresses[i]
        taken = outcomes[i]
        predicted = predict(address)
        # Tag check before update (updates may change accessed()).
        aggressors: list[int] = []
        for table_id, index in accessed():
            table_tags = tags[table_id]
            previous = table_tags[index]
            if previous >= 0 and previous != address:
                aggressors.append(previous)
            table_tags[index] = address
        update(address, taken, predicted)

        victim = records.get(address)
        if victim is None:
            victim = CollisionInvolvement()
            records[address] = victim
        victim.executions += 1
        if aggressors:
            if predicted == taken:
                victim.constructive += len(aggressors)
                for aggressor_address in aggressors:
                    aggressor = records.get(aggressor_address)
                    if aggressor is None:
                        aggressor = CollisionInvolvement()
                        records[aggressor_address] = aggressor
                    aggressor.constructive += 1
            else:
                victim.destructive += len(aggressors)
                for aggressor_address in aggressors:
                    aggressor = records.get(aggressor_address)
                    if aggressor is None:
                        aggressor = CollisionInvolvement()
                        records[aggressor_address] = aggressor
                    aggressor.destructive += 1

    return CollisionProfile(
        trace.program_name, trace.input_name, predictor.name, records
    )
