"""Branch profiling: the data behind both static-selection schemes.

The paper's methodology (Section 4) is two-phase.  Phase one profiles the
program, producing for each static conditional branch:

* its execution and taken counts (the **bias profile**, enough for the
  ``Static_95`` scheme), and
* optionally, the per-branch prediction accuracy of a *simulated dynamic
  predictor* (needed by the ``Static_Acc`` scheme, which selects branches
  whose bias exceeds the accuracy the dynamic predictor achieved on
  them).

This subpackage provides those profiles
(:mod:`~repro.profiling.profile`, :mod:`~repro.profiling.accuracy`), a
Spike-style profile database with merging and anomaly filtering
(:mod:`~repro.profiling.database`), and the train-versus-ref behaviour
drift analysis of Table 5 (:mod:`~repro.profiling.drift`).
"""

from repro.profiling.accuracy import AccuracyProfile, measure_accuracy
from repro.profiling.collision_profile import (
    CollisionProfile,
    measure_collision_involvement,
)
from repro.profiling.database import ProfileDatabase
from repro.profiling.drift import DriftReport, analyze_drift
from repro.profiling.profile import BranchProfile, ProgramProfile

__all__ = [
    "BranchProfile",
    "ProgramProfile",
    "AccuracyProfile",
    "measure_accuracy",
    "CollisionProfile",
    "measure_collision_involvement",
    "ProfileDatabase",
    "DriftReport",
    "analyze_drift",
]
