"""Train-versus-ref behaviour drift analysis (Table 5 of the paper).

Table 5 reports, for each program, how branch behaviour changes when the
input moves from ``train`` to ``ref``:

* **coverage** -- what fraction of the branches executed under ``ref``
  were also seen under ``train`` (static count and dynamic,
  execution-weighted);
* **majority direction change** -- branches whose majority direction
  reverses between the inputs;
* **bias change < 5% / > 50%** -- branches whose taken-rate moves a
  little (safe to keep in a merged profile) or a lot (the branches that
  make naive cross-training dangerous).

Bias change here is measured on the *taken-rate* (|taken_rate_train -
taken_rate_ref|), which ranges over [0, 1] and makes "changes by more
than 50%" meaningful; a full reversal of a 97%-taken branch scores 0.94.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.profiling.profile import ProgramProfile

__all__ = ["DriftReport", "analyze_drift"]


@dataclass(slots=True)
class DriftReport:
    """Drift statistics between two profiles of the same program.

    All ``*_static`` fields are fractions of the *common* static branches
    (seen under both inputs) unless noted; ``*_dynamic`` fields weight
    each branch by its ref-input execution count, because a reversal on a
    hot branch is what actually destroys cross-trained static prediction.
    """

    program_name: str
    ref_branches: int
    """Static branches executed under ref."""
    common_branches: int
    """Static branches executed under both inputs."""
    coverage_static: float
    """common / ref (Table 5 "Seen with ..." column)."""
    coverage_dynamic: float
    """Fraction of ref executions from branches seen under train."""
    majority_change_static: float
    majority_change_dynamic: float
    small_change_static: float
    """Bias (taken-rate) change < 5% -- stable branches."""
    small_change_dynamic: float
    large_change_static: float
    """Bias (taken-rate) change > 50% -- dangerous branches."""
    large_change_dynamic: float


def analyze_drift(
    train: ProgramProfile,
    ref: ProgramProfile,
    small_threshold: float = 0.05,
    large_threshold: float = 0.50,
    min_ref_executions: int = 1,
) -> DriftReport:
    """Compare a train profile against a ref profile (Table 5).

    ``min_ref_executions`` restricts the analysis to ref branches with at
    least that many executions.  The paper profiles billions of branches,
    so "not seen under train" means unreachable; with sampled traces a
    cold branch can be absent by chance, and raising the threshold keeps
    the coverage column about reachability rather than sampling.
    """
    if min_ref_executions > 1:
        ref = ref.filtered(lambda _a, p: p.executions >= min_ref_executions)
    ref_total_executions = ref.total_executions or 1
    common = 0
    common_executions = 0
    majority_static = 0
    majority_dynamic = 0
    small_static = 0
    small_dynamic = 0
    large_static = 0
    large_dynamic = 0

    for address, ref_profile in ref.items():
        train_profile = train.get(address)
        if train_profile is None:
            continue
        common += 1
        common_executions += ref_profile.executions
        change = abs(train_profile.taken_rate - ref_profile.taken_rate)
        if train_profile.majority_taken != ref_profile.majority_taken:
            majority_static += 1
            majority_dynamic += ref_profile.executions
        if change < small_threshold:
            small_static += 1
            small_dynamic += ref_profile.executions
        if change > large_threshold:
            large_static += 1
            large_dynamic += ref_profile.executions

    common_denominator = common or 1
    common_exec_denominator = common_executions or 1
    return DriftReport(
        program_name=ref.program_name,
        ref_branches=len(ref),
        common_branches=common,
        coverage_static=common / (len(ref) or 1),
        coverage_dynamic=common_executions / ref_total_executions,
        majority_change_static=majority_static / common_denominator,
        majority_change_dynamic=majority_dynamic / common_exec_denominator,
        small_change_static=small_static / common_denominator,
        small_change_dynamic=small_dynamic / common_exec_denominator,
        large_change_static=large_static / common_denominator,
        large_change_dynamic=large_dynamic / common_exec_denominator,
    )
