"""Bias profiles: per-branch execution and taken counts.

A :class:`ProgramProfile` is keyed by branch *address* (the stable
identity a binary rewriter like Spike works with), holding one
:class:`BranchProfile` per executed branch.  Profiles support merging
(accumulating runs over multiple inputs, as the Spike database does) and
JSON persistence (the "database" recording the paper's phase-one
selection decisions).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.errors import ProfileError
from repro.workloads.trace import BranchTrace

__all__ = ["BranchProfile", "ProgramProfile"]


@dataclass(slots=True)
class BranchProfile:
    """Execution statistics for one static branch."""

    executions: int = 0
    taken: int = 0

    def __post_init__(self) -> None:
        if self.executions < 0 or self.taken < 0 or self.taken > self.executions:
            raise ProfileError(
                f"inconsistent branch profile: taken={self.taken} "
                f"executions={self.executions}"
            )

    @property
    def taken_rate(self) -> float:
        """Fraction of executions resolved taken (0 if never executed)."""
        if self.executions == 0:
            return 0.0
        return self.taken / self.executions

    @property
    def bias(self) -> float:
        """The paper's bias: ``max(taken-rate, not-taken-rate)``."""
        rate = self.taken_rate
        return max(rate, 1.0 - rate)

    @property
    def majority_taken(self) -> bool:
        """Majority direction; ties count as taken."""
        return self.taken * 2 >= self.executions

    def record(self, taken: bool) -> None:
        """Add one execution."""
        self.executions += 1
        if taken:
            self.taken += 1

    def merged_with(self, other: "BranchProfile") -> "BranchProfile":
        """Sum of two profiles (for database merging)."""
        return BranchProfile(
            executions=self.executions + other.executions,
            taken=self.taken + other.taken,
        )


class ProgramProfile:
    """Bias profiles for every executed branch of one program run.

    Mapping-like by branch address.  ``program_name`` and ``input_name``
    identify the run the profile came from; merged profiles carry
    synthetic input names like ``"train+ref"``.
    """

    def __init__(
        self,
        program_name: str,
        input_name: str,
        branches: Mapping[int, BranchProfile] | None = None,
    ):
        self.program_name = program_name
        self.input_name = input_name
        self.branches: dict[int, BranchProfile] = dict(branches or {})

    @classmethod
    def from_trace(cls, trace: BranchTrace) -> "ProgramProfile":
        """Profile a trace (the Atom instrumentation pass of phase one).

        Uses a whole-column numpy tally when numpy is available; the
        result is bit-identical to the scalar pass, including the
        mapping's first-occurrence insertion order (which ``to_json``
        serializes).  The tally is a sort-based groupby: a plain
        argsort (no stable kind needed -- first occurrences come from
        a per-group minimum) and ``reduceat`` group sums.
        """
        try:
            import numpy
        except ImportError:
            return cls._from_trace_scalar(trace)
        if len(trace) == 0:
            return cls(trace.program_name, trace.input_name, {})
        addresses, outcomes = trace.arrays()
        n = addresses.shape[0]
        sidx = numpy.argsort(addresses)
        sorted_addr = addresses[sidx]
        starts = numpy.flatnonzero(
            numpy.r_[True, sorted_addr[1:] != sorted_addr[:-1]]
        )
        executions = numpy.diff(numpy.r_[starts, n])
        taken = numpy.add.reduceat(
            outcomes[sidx].astype(numpy.int64), starts
        )
        # The sort need not be stable: each group's first occurrence
        # is the minimum original index within the group.
        first = numpy.minimum.reduceat(sidx, starts)
        order = numpy.argsort(first, kind="stable")
        branches = {
            address: BranchProfile(executions=e, taken=t)
            for address, e, t in zip(
                sorted_addr[starts][order].tolist(),
                executions[order].tolist(),
                taken[order].tolist(),
            )
        }
        return cls(trace.program_name, trace.input_name, branches)

    @classmethod
    def _from_trace_scalar(cls, trace: BranchTrace) -> "ProgramProfile":
        """Numpy-free fallback (and the differential-test reference)."""
        counts: dict[int, list[int]] = {}
        # repro: allow[PERF001] -- the numpy-free fallback; the
        # vectorized pass above is the hot path and is differentially
        # tested against this loop
        for address, taken in zip(trace.addresses, trace.outcomes):
            entry = counts.get(address)
            if entry is None:
                counts[address] = [1, 1 if taken else 0]
            else:
                entry[0] += 1
                if taken:
                    entry[1] += 1
        branches = {
            address: BranchProfile(executions=c[0], taken=c[1])
            for address, c in counts.items()
        }
        return cls(trace.program_name, trace.input_name, branches)

    def __len__(self) -> int:
        return len(self.branches)

    def __contains__(self, address: int) -> bool:
        return address in self.branches

    def __getitem__(self, address: int) -> BranchProfile:
        return self.branches[address]

    def get(self, address: int) -> BranchProfile | None:
        """Profile for an address, or None if the branch never executed."""
        return self.branches.get(address)

    def __iter__(self) -> Iterator[int]:
        return iter(self.branches)

    def items(self):
        """(address, BranchProfile) pairs."""
        return self.branches.items()

    @property
    def total_executions(self) -> int:
        """Total dynamic branches covered by the profile."""
        return sum(p.executions for p in self.branches.values())

    def merge(self, other: "ProgramProfile") -> "ProgramProfile":
        """Accumulate another run's counts (the Spike database merge).

        Raises :class:`ProfileError` when the profiles belong to
        different programs.
        """
        if other.program_name != self.program_name:
            raise ProfileError(
                f"cannot merge profiles of {self.program_name!r} and "
                f"{other.program_name!r}"
            )
        merged: dict[int, BranchProfile] = dict(self.branches)
        for address, profile in other.branches.items():
            mine = merged.get(address)
            merged[address] = profile if mine is None else mine.merged_with(profile)
        return ProgramProfile(
            self.program_name,
            f"{self.input_name}+{other.input_name}",
            merged,
        )

    def filtered(self, predicate) -> "ProgramProfile":
        """Profile restricted to addresses satisfying ``predicate(addr, prof)``."""
        return ProgramProfile(
            self.program_name,
            self.input_name,
            {a: p for a, p in self.branches.items() if predicate(a, p)},
        )

    # -- persistence ---------------------------------------------------

    def to_json(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps(
            {
                "program": self.program_name,
                "input": self.input_name,
                "branches": {
                    format(address, "x"): [p.executions, p.taken]
                    for address, p in self.branches.items()
                },
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "ProgramProfile":
        """Inverse of :meth:`to_json`."""
        try:
            data = json.loads(text)
            branches = {
                int(address, 16): BranchProfile(executions=c[0], taken=c[1])
                for address, c in data["branches"].items()
            }
            return cls(data["program"], data["input"], branches)
        except (KeyError, ValueError, TypeError) as exc:
            raise ProfileError(f"malformed profile JSON: {exc}") from exc

    def save(self, path: str) -> None:
        """Write the profile to a JSON file."""
        with open(path, "w", encoding="utf-8") as stream:
            stream.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "ProgramProfile":
        """Read a profile from a JSON file."""
        with open(path, "r", encoding="utf-8") as stream:
            return cls.from_json(stream.read())
