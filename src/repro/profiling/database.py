"""A Spike-style profile database.

Section 5.1 of the paper: "Spike maintains a database of profile data for
every program.  As a program runs with different inputs in
'instrumentation' mode, Spike collects execution profile for the program
and updates the profile database. ... we can imagine that as the profile
database is updated anomalies in branch biases can be removed.  For
example the profile updating can filter out profile data about branches
that change bias by, say, more than 5%."

:class:`ProfileDatabase` implements exactly that flow: it accumulates
per-input profiles per program, can produce a **merged** profile across
inputs, and can produce a **stable-filtered** profile that drops branches
whose taken-rate moved more than a threshold between recorded inputs --
the mechanism Figure 13's fourth bar uses to rescue cross-training for
perl and m88ksim.
"""

from __future__ import annotations

import json
import os
from typing import Iterable

from repro.errors import ProfileError
from repro.profiling.profile import BranchProfile, ProgramProfile

__all__ = ["ProfileDatabase"]


class ProfileDatabase:
    """Accumulated profiles for many programs and inputs."""

    def __init__(self) -> None:
        # program -> input -> ProgramProfile
        self._profiles: dict[str, dict[str, ProgramProfile]] = {}

    def record(self, profile: ProgramProfile) -> None:
        """Add (or accumulate into) a program/input profile.

        Recording two profiles for the same program and input merges
        their counts, matching Spike accumulating repeated runs.
        """
        per_program = self._profiles.setdefault(profile.program_name, {})
        existing = per_program.get(profile.input_name)
        if existing is None:
            per_program[profile.input_name] = profile
        else:
            merged = existing.merge(profile)
            merged.input_name = profile.input_name
            per_program[profile.input_name] = merged

    def programs(self) -> list[str]:
        """Program names present in the database."""
        return sorted(self._profiles)

    def inputs(self, program: str) -> list[str]:
        """Input names recorded for a program."""
        return sorted(self._require_program(program))

    def get(self, program: str, input_name: str) -> ProgramProfile:
        """The profile for one program/input; raises if absent."""
        per_program = self._require_program(program)
        try:
            return per_program[input_name]
        except KeyError:
            known = ", ".join(sorted(per_program))
            raise ProfileError(
                f"no profile for input {input_name!r} of {program!r}; "
                f"recorded inputs: {known}"
            ) from None

    def merged(self, program: str, inputs: Iterable[str] | None = None) -> ProgramProfile:
        """Merge counts across the given inputs (default: all recorded)."""
        per_program = self._require_program(program)
        names = list(inputs) if inputs is not None else sorted(per_program)
        if not names:
            raise ProfileError(f"no inputs to merge for {program!r}")
        result: ProgramProfile | None = None
        for name in names:
            profile = self.get(program, name)
            result = profile if result is None else result.merge(profile)
        assert result is not None
        return result

    def stable_filtered(
        self,
        program: str,
        inputs: Iterable[str] | None = None,
        max_taken_rate_change: float = 0.05,
    ) -> ProgramProfile:
        """Merged profile restricted to behaviour-stable branches.

        A branch is *stable* when its taken-rate differs by at most
        ``max_taken_rate_change`` between every pair of recorded inputs
        that executed it.  Branches seen under only one input count as
        stable (there is no evidence of change).  This is the paper's
        ">5% bias change" anomaly filter.
        """
        if not 0.0 <= max_taken_rate_change <= 1.0:
            raise ProfileError(
                f"max_taken_rate_change must be in [0, 1], got "
                f"{max_taken_rate_change}"
            )
        per_program = self._require_program(program)
        names = list(inputs) if inputs is not None else sorted(per_program)
        profiles = [self.get(program, name) for name in names]
        merged = self.merged(program, names)

        def stable(address: int, _profile: BranchProfile) -> bool:
            rates = [
                p[address].taken_rate for p in profiles if address in p
            ]
            return max(rates) - min(rates) <= max_taken_rate_change

        result = merged.filtered(stable)
        result.input_name = "+".join(names) + f"|stable<{max_taken_rate_change:g}"
        return result

    def _require_program(self, program: str) -> dict[str, ProgramProfile]:
        try:
            return self._profiles[program]
        except KeyError:
            known = ", ".join(sorted(self._profiles)) or "(none)"
            raise ProfileError(
                f"no profiles recorded for program {program!r}; known: {known}"
            ) from None

    # -- persistence ---------------------------------------------------

    def save(self, directory: str) -> None:
        """Write the database as one JSON file per program/input."""
        os.makedirs(directory, exist_ok=True)
        index = []
        for program, per_input in sorted(self._profiles.items()):
            for input_name, profile in sorted(per_input.items()):
                filename = f"{program}.{input_name}.profile.json"
                profile.save(os.path.join(directory, filename))
                index.append(filename)
        with open(os.path.join(directory, "index.json"), "w", encoding="utf-8") as f:
            json.dump(index, f)

    @classmethod
    def load(cls, directory: str) -> "ProfileDatabase":
        """Read a database written by :meth:`save`."""
        index_path = os.path.join(directory, "index.json")
        try:
            with open(index_path, "r", encoding="utf-8") as f:
                index = json.load(f)
        except (OSError, ValueError) as exc:
            raise ProfileError(f"cannot read profile database index: {exc}") from exc
        database = cls()
        for filename in index:
            database.record(ProgramProfile.load(os.path.join(directory, filename)))
        return database
