"""Per-branch dynamic-predictor accuracy profiling.

The ``Static_Acc`` selection scheme needs, for every branch, the
prediction accuracy *a specific dynamic predictor* achieved on it
(Section 4: "for selecting hard to predict branches, we actually
simulated the dynamic predictor in the first phase").  The paper obtains
this with Atom instrumentation or ProfileMe; here we run the trace
through a freshly constructed predictor and count per-branch hits.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Mapping

from repro.errors import ProfileError
from repro.predictors.base import BranchPredictor
from repro.workloads.trace import BranchTrace

__all__ = ["BranchAccuracy", "AccuracyProfile", "measure_accuracy"]


@dataclass(slots=True)
class BranchAccuracy:
    """Prediction statistics for one branch under one dynamic predictor."""

    executions: int = 0
    correct: int = 0

    def __post_init__(self) -> None:
        if self.executions < 0 or self.correct < 0 or self.correct > self.executions:
            raise ProfileError(
                f"inconsistent accuracy record: correct={self.correct} "
                f"executions={self.executions}"
            )

    @property
    def accuracy(self) -> float:
        """Fraction of executions predicted correctly (0 if never run)."""
        if self.executions == 0:
            return 0.0
        return self.correct / self.executions


class AccuracyProfile:
    """Per-branch accuracy of one predictor over one run."""

    def __init__(
        self,
        program_name: str,
        input_name: str,
        predictor_name: str,
        branches: Mapping[int, BranchAccuracy] | None = None,
    ):
        self.program_name = program_name
        self.input_name = input_name
        self.predictor_name = predictor_name
        self.branches: dict[int, BranchAccuracy] = dict(branches or {})

    def __len__(self) -> int:
        return len(self.branches)

    def __contains__(self, address: int) -> bool:
        return address in self.branches

    def get(self, address: int) -> BranchAccuracy | None:
        """Accuracy record for an address, or None if never executed."""
        return self.branches.get(address)

    def accuracy_of(self, address: int) -> float:
        """Accuracy for an address; 0.0 for branches never seen.

        Returning 0.0 for unseen branches makes ``Static_Acc`` treat them
        as maximally hard, which is conservative: their profile bias will
        also be unknown, and the selection layer refuses to emit hints
        for branches without a bias profile.
        """
        record = self.branches.get(address)
        return record.accuracy if record is not None else 0.0

    @property
    def overall_accuracy(self) -> float:
        """Execution-weighted accuracy over all branches."""
        executions = sum(r.executions for r in self.branches.values())
        if executions == 0:
            return 0.0
        correct = sum(r.correct for r in self.branches.values())
        return correct / executions

    # -- persistence ---------------------------------------------------

    def to_json(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps(
            {
                "program": self.program_name,
                "input": self.input_name,
                "predictor": self.predictor_name,
                "branches": {
                    format(address, "x"): [r.executions, r.correct]
                    for address, r in self.branches.items()
                },
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "AccuracyProfile":
        """Inverse of :meth:`to_json`."""
        try:
            data = json.loads(text)
            branches = {
                int(address, 16): BranchAccuracy(executions=c[0], correct=c[1])
                for address, c in data["branches"].items()
            }
            return cls(data["program"], data["input"], data["predictor"], branches)
        except (KeyError, ValueError, TypeError) as exc:
            raise ProfileError(f"malformed accuracy JSON: {exc}") from exc


def measure_accuracy(trace: BranchTrace, predictor: BranchPredictor) -> AccuracyProfile:
    """Simulate ``predictor`` over ``trace``, recording per-branch hits.

    The predictor is consumed (trained) by the measurement; pass a fresh
    instance.  This is the phase-one simulation of the paper's
    ``Static_Acc`` methodology.

    Kernel-backed predictor families replay through
    :func:`repro.kernels.try_fast_predictions` and tally per-branch
    hits with one sort-based groupby (the
    :meth:`~repro.profiling.profile.ProgramProfile.from_trace` idiom);
    the result is bit-identical to the reference loop, including the
    mapping's first-occurrence insertion order.
    """
    from repro.kernels import try_fast_predictions

    predictions = try_fast_predictions(trace, predictor)
    if predictions is None:
        return _measure_accuracy_scalar(trace, predictor)
    import numpy

    if len(trace) == 0:
        return AccuracyProfile(
            trace.program_name, trace.input_name, predictor.name, {}
        )
    addresses, outcomes = trace.arrays()
    n = addresses.shape[0]
    correct = (predictions == outcomes).astype(numpy.int64)
    sidx = numpy.argsort(addresses)
    sorted_addr = addresses[sidx]
    starts = numpy.flatnonzero(
        numpy.r_[True, sorted_addr[1:] != sorted_addr[:-1]]
    )
    executions = numpy.diff(numpy.r_[starts, n])
    hits = numpy.add.reduceat(correct[sidx], starts)
    # The sort need not be stable: each group's first occurrence is the
    # minimum original index within the group.
    first = numpy.minimum.reduceat(sidx, starts)
    order = numpy.argsort(first, kind="stable")
    branches = {
        address: BranchAccuracy(executions=e, correct=c)
        for address, e, c in zip(
            sorted_addr[starts][order].tolist(),
            executions[order].tolist(),
            hits[order].tolist(),
        )
    }
    return AccuracyProfile(
        trace.program_name, trace.input_name, predictor.name, branches
    )


def _measure_accuracy_scalar(
    trace: BranchTrace, predictor: BranchPredictor
) -> AccuracyProfile:
    """Reference loop (kernel-less predictors, and the differential baseline)."""
    counts: dict[int, list[int]] = {}
    predict = predictor.predict
    update = predictor.update
    addresses = trace.addresses
    outcomes = trace.outcomes
    # repro: allow[PERF001] -- the numpy-free fallback and correctness
    # reference; kernel-backed families take the vectorized path above,
    # which is differentially tested against this loop
    for i in range(len(addresses)):
        address = addresses[i]
        taken = outcomes[i]
        predicted = predict(address)
        update(address, taken, predicted)
        entry = counts.get(address)
        if entry is None:
            counts[address] = [1, 1 if predicted == taken else 0]
        else:
            entry[0] += 1
            if predicted == taken:
                entry[1] += 1
    branches = {
        address: BranchAccuracy(executions=c[0], correct=c[1])
        for address, c in counts.items()
    }
    return AccuracyProfile(
        trace.program_name, trace.input_name, predictor.name, branches
    )
