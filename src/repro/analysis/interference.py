"""Interference analysis: which branch pairs destroy each other.

The paper quantifies aliasing with aggregate collision counts; selecting
branches to fix it (the future-work ``static_collision`` scheme) needs
the per-pair view: for every (victim, aggressor) pair sharing counters,
how many destructive and constructive collisions did the pair produce?

``analyze_interference`` replays a trace through a predictor with
per-pair tag accounting and reports the dominant destructive pairs --
useful both for debugging workload models (is aliasing concentrated or
diffuse?) and for explaining why a particular hint assignment worked.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.predictors.base import BranchPredictor
from repro.workloads.trace import BranchTrace

__all__ = ["PairCounts", "InterferenceAnalysis", "analyze_interference"]


@dataclass(slots=True)
class PairCounts:
    """Collision counts for one ordered (victim, aggressor) pair."""

    destructive: int = 0
    constructive: int = 0

    @property
    def total(self) -> int:
        return self.destructive + self.constructive


@dataclass(slots=True)
class InterferenceAnalysis:
    """Full pairwise collision accounting for one run."""

    program_name: str
    predictor_name: str
    pairs: dict[tuple[int, int], PairCounts] = field(default_factory=dict)
    total_collisions: int = 0
    total_destructive: int = 0

    @property
    def destructive_fraction(self) -> float:
        """Overall destructive share -- Young et al.'s observation that
        collisions are "more likely to be destructive than constructive"
        is checkable here."""
        if self.total_collisions == 0:
            return 0.0
        return self.total_destructive / self.total_collisions

    def top_destructive_pairs(self, count: int = 10) -> list[tuple[tuple[int, int], PairCounts]]:
        """The pairs responsible for the most destructive collisions."""
        ranked = sorted(
            self.pairs.items(), key=lambda item: item[1].destructive,
            reverse=True,
        )
        return ranked[:count]

    def concentration(self, fraction: float = 0.5) -> int:
        """How many pairs account for ``fraction`` of destructive events.

        A small number means aliasing is concentrated (a few hint bits
        fix it); a large number means it is diffuse (grow the table).
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        target = self.total_destructive * fraction
        accumulated = 0
        for count_index, (_pair, counts) in enumerate(
            sorted(self.pairs.items(), key=lambda item: item[1].destructive,
                   reverse=True),
            start=1,
        ):
            accumulated += counts.destructive
            if accumulated >= target:
                return count_index
        return len(self.pairs)


def analyze_interference(
    trace: BranchTrace, predictor: BranchPredictor
) -> InterferenceAnalysis:
    """Replay ``trace`` through ``predictor`` with per-pair accounting.

    The predictor is consumed (trained).  Pair keys are
    ``(victim_address, aggressor_address)`` -- the branch doing the
    lookup and the previous owner of the counter it hit.
    """
    analysis = InterferenceAnalysis(
        program_name=trace.program_name,
        predictor_name=predictor.name,
    )
    tags: list[list[int]] = [
        [-1] * entries for entries in predictor.table_entry_counts()
    ]
    pairs = analysis.pairs
    predict = predictor.predict
    update = predictor.update
    accessed = predictor.accessed
    addresses = trace.addresses
    outcomes = trace.outcomes

    for i in range(len(addresses)):
        address = addresses[i]
        taken = outcomes[i]
        predicted = predict(address)
        hit_aggressors: list[int] = []
        for table_id, index in accessed():
            table_tags = tags[table_id]
            previous = table_tags[index]
            if previous >= 0 and previous != address:
                hit_aggressors.append(previous)
            table_tags[index] = address
        update(address, taken, predicted)
        if not hit_aggressors:
            continue
        destructive = predicted != taken
        analysis.total_collisions += len(hit_aggressors)
        if destructive:
            analysis.total_destructive += len(hit_aggressors)
        for aggressor in hit_aggressors:
            key = (address, aggressor)
            counts = pairs.get(key)
            if counts is None:
                counts = PairCounts()
                pairs[key] = counts
            if destructive:
                counts.destructive += 1
            else:
                counts.constructive += 1
    return analysis
