"""A pipeline cost model for branch mispredictions.

The paper's introduction motivates the whole study: "an incorrect
prediction degrades performance because the processor has wasted time and
resources evaluating wrong path instructions.  As processor pipelines get
increasingly deeper this performance degradation is becoming increasingly
significant."  And its metric choice follows: MISPs/KI translates
directly into cycles, where prediction accuracy does not.

This model makes the translation explicit: given a base CPI (all-hit
ideal) and a misprediction penalty in cycles, a simulation result's
MISPs/KI becomes a CPI estimate and a speedup between two predictor
configurations becomes a wall-clock claim.  Default penalty follows the
Alpha 21264-class pipelines of the paper's era (~7 cycles minimum
redirect); deeper modern pipelines are a constructor argument away.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import SimulationResult
from repro.errors import ConfigurationError

__all__ = ["PipelineCostModel"]


@dataclass(frozen=True, slots=True)
class PipelineCostModel:
    """CPI impact of branch mispredictions.

    Attributes
    ----------
    base_cpi:
        Cycles per instruction with perfect branch prediction.
    misprediction_penalty:
        Pipeline-redirect cost of one misprediction, in cycles.
    """

    base_cpi: float = 1.0
    misprediction_penalty: float = 7.0

    def __post_init__(self) -> None:
        if self.base_cpi <= 0:
            raise ConfigurationError(f"base_cpi must be positive, got {self.base_cpi}")
        if self.misprediction_penalty < 0:
            raise ConfigurationError(
                f"misprediction_penalty must be >= 0, got "
                f"{self.misprediction_penalty}"
            )

    def cpi(self, result: SimulationResult) -> float:
        """Estimated CPI for a simulation result.

        MISPs/KI is mispredictions per 1000 instructions, so the penalty
        contribution is ``misp_per_ki * penalty / 1000`` cycles per
        instruction.
        """
        return self.base_cpi + result.misp_per_ki * self.misprediction_penalty / 1000.0

    def cycles(self, result: SimulationResult) -> float:
        """Estimated total cycles for the simulated instruction stream."""
        return self.cpi(result) * result.instructions

    def speedup(self, base: SimulationResult, improved: SimulationResult) -> float:
        """Wall-clock speedup of ``improved`` over ``base`` (>1 = faster).

        Both results should cover the same workload; the comparison is
        per instruction so modest trace-length differences wash out.
        """
        return self.cpi(base) / self.cpi(improved)

    def mispredict_overhead(self, result: SimulationResult) -> float:
        """Fraction of cycles spent repairing mispredictions."""
        cpi = self.cpi(result)
        return (cpi - self.base_cpi) / cpi
