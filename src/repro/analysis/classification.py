"""Branch classification by run-time bias (Chang, Hao, Yeh & Patt).

Section 3 of the paper: "Chung et al. propose a branch classification
mechanism.  Branches are put into different categories depending on
their run-time behavior.  Branches in different categories are predicted
by different predictors at run-time. ... One of our schemes for static
prediction (Static_95) is based on this work.  We identify mostly
taken/not-taken (highly biased) branches as 'easy to predict' branches."

The classic classification buckets branches by taken-rate into six
classes; this module implements it over a
:class:`~repro.profiling.profile.ProgramProfile` and, given a per-branch
:class:`~repro.profiling.accuracy.AccuracyProfile`, reports how a dynamic
predictor fares on each class -- the per-class view that explains *why*
``Static_95`` helps some predictors and not others.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.profiling.accuracy import AccuracyProfile
from repro.profiling.profile import ProgramProfile

__all__ = ["BiasClass", "ClassBreakdown", "classify_branches"]


class BiasClass(enum.Enum):
    """Taken-rate bands, after Chang et al.'s classification.

    The band edges follow the common presentation of the scheme: the
    one-sided 5% tails are the "highly biased" classes Static_95
    targets.
    """

    MOSTLY_NOT_TAKEN = "mostly-not-taken"   # taken rate [0, 5%]
    NOT_TAKEN = "not-taken"                 # (5%, 25%]
    WEAKLY_NOT_TAKEN = "weakly-not-taken"   # (25%, 50%]
    WEAKLY_TAKEN = "weakly-taken"           # (50%, 75%]
    TAKEN = "taken"                         # (75%, 95%)
    MOSTLY_TAKEN = "mostly-taken"           # [95%, 100%]

    @classmethod
    def of(cls, taken_rate: float) -> "BiasClass":
        """Classify one taken-rate."""
        if taken_rate <= 0.05:
            return cls.MOSTLY_NOT_TAKEN
        if taken_rate <= 0.25:
            return cls.NOT_TAKEN
        if taken_rate <= 0.50:
            return cls.WEAKLY_NOT_TAKEN
        if taken_rate <= 0.75:
            return cls.WEAKLY_TAKEN
        if taken_rate < 0.95:
            return cls.TAKEN
        return cls.MOSTLY_TAKEN

    @property
    def highly_biased(self) -> bool:
        """Whether the class is one of the 5% tails (Static_95's prey)."""
        return self in (BiasClass.MOSTLY_TAKEN, BiasClass.MOSTLY_NOT_TAKEN)


@dataclass(slots=True)
class ClassStats:
    """Aggregates for one bias class."""

    static_branches: int = 0
    executions: int = 0
    predictor_correct: int = 0
    predictor_measured: int = 0
    """Executions for which predictor accuracy data was available."""

    @property
    def predictor_accuracy(self) -> float:
        """Dynamic predictor accuracy over this class (0 if unmeasured)."""
        if self.predictor_measured == 0:
            return 0.0
        return self.predictor_correct / self.predictor_measured


@dataclass(slots=True)
class ClassBreakdown:
    """Classification of a whole program run."""

    program_name: str
    classes: dict[BiasClass, ClassStats] = field(default_factory=dict)

    def stats(self, bias_class: BiasClass) -> ClassStats:
        """Stats for one class (empty stats if no branches fell in it)."""
        return self.classes.get(bias_class, ClassStats())

    @property
    def total_executions(self) -> int:
        return sum(s.executions for s in self.classes.values())

    def dynamic_fraction(self, bias_class: BiasClass) -> float:
        """Fraction of dynamic executions in a class."""
        total = self.total_executions
        if total == 0:
            return 0.0
        return self.stats(bias_class).executions / total

    def highly_biased_dynamic_fraction(self) -> float:
        """Table 2's quantity, via the classification (bias >= 95%).

        Note the class edges make this a ``>= 0.95`` bucket whereas
        Table 2 uses a strict ``> 0.95`` cutoff; the difference is the
        measure-zero boundary.
        """
        return sum(
            self.dynamic_fraction(c) for c in BiasClass if c.highly_biased
        )

    def rows(self) -> list[list[object]]:
        """Render-ready rows (class, static count, dyn %, accuracy)."""
        total = self.total_executions or 1
        result: list[list[object]] = []
        for bias_class in BiasClass:
            stats = self.stats(bias_class)
            result.append(
                [
                    bias_class.value,
                    stats.static_branches,
                    f"{stats.executions / total:.1%}",
                    f"{stats.predictor_accuracy:.1%}"
                    if stats.predictor_measured
                    else "-",
                ]
            )
        return result


def classify_branches(
    profile: ProgramProfile,
    accuracy: AccuracyProfile | None = None,
) -> ClassBreakdown:
    """Classify every profiled branch; optionally fold in accuracy data.

    With ``accuracy`` given, each class also reports the dynamic
    predictor's execution-weighted accuracy on its branches, showing at a
    glance which classes the predictor already handles (the paper's
    argument for why bimodal + Static_95 is redundant while
    ghist + Static_95 is complementary).
    """
    breakdown = ClassBreakdown(program_name=profile.program_name)
    for address, branch in profile.items():
        bias_class = BiasClass.of(branch.taken_rate)
        stats = breakdown.classes.get(bias_class)
        if stats is None:
            stats = ClassStats()
            breakdown.classes[bias_class] = stats
        stats.static_branches += 1
        stats.executions += branch.executions
        if accuracy is not None:
            record = accuracy.get(address)
            if record is not None:
                stats.predictor_measured += record.executions
                stats.predictor_correct += record.correct
    return breakdown
