"""Analysis helpers built on profiles and simulation results.

* :mod:`repro.analysis.classification` -- the Chang et al. branch
  classification (Section 3 of the paper: "Branches are put into
  different categories depending on their run-time behavior"), which is
  the intellectual ancestor of the ``Static_95`` scheme;
* :mod:`repro.analysis.interference` -- who collides with whom: the
  aggressor/victim pair analysis behind the collision-aware selection
  scheme;
* :mod:`repro.analysis.cost` -- the pipeline cost model that motivates
  MISPs/KI as the paper's metric ("an incorrect prediction degrades
  performance because the processor has wasted time and resources
  evaluating wrong path instructions").
"""

from repro.analysis.classification import BiasClass, classify_branches, ClassBreakdown
from repro.analysis.cost import PipelineCostModel
from repro.analysis.interference import InterferenceAnalysis, analyze_interference

__all__ = [
    "BiasClass",
    "ClassBreakdown",
    "classify_branches",
    "PipelineCostModel",
    "InterferenceAnalysis",
    "analyze_interference",
]
