"""Local-history (two-level, per-branch) predictors: PAg and the
tournament predictor of the Alpha 21264.

The paper's taxonomy (Section 2, citing Yeh & Patt) distinguishes
predictors by whether they use the *global* outcome history ("ghist",
gshare) or each branch's *own* history.  The paper evaluates only
global-history schemes; these two local-history schemes are provided as
extensions because

* they complete the classic design space the paper situates itself in,
  and
* the tournament predictor is the shipped predictor of the Alpha 21264
  -- the very processor family the paper's authors (Compaq Alpha
  Development Group) were building -- making it the natural "what the
  hardware actually did" baseline for ablations.

``LocalHistoryPredictor`` (PAg): a PC-indexed table of per-branch history
registers selects into a shared table of 2-bit counters (here a
3-bit-counter pattern table, as in the 21264's local side when used
standalone with 2 bits; width configurable).

``TournamentPredictor`` (21264-style): a local side (per-branch history
-> counter table), a global side (ghist -> counter table), and a
ghist-indexed chooser trained only when the sides disagree.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.predictors.base import BranchPredictor
from repro.predictors.counters import CounterTable
from repro.predictors.history import GlobalHistory
from repro.utils.bits import ADDRESS_ALIGN_SHIFT, is_power_of_two, log2_exact

__all__ = ["LocalHistoryPredictor", "TournamentPredictor"]


class LocalHistoryPredictor(BranchPredictor):
    """PAg: per-branch history registers indexing a shared counter table.

    Table ids for collision instrumentation: 0 = pattern (counter)
    table.  The history-register file is indexed per branch and excluded
    from collision tags, mirroring how the paper's instrumentation tags
    only counters.
    """

    name = "local"
    _PREDICT_STATE = ("_last_history_index", "_last_pattern_index")
    _WIDTHS = {"histories": "history_length", "table": "counter_bits"}

    def __init__(
        self,
        pattern_entries: int,
        history_entries: int | None = None,
        history_length: int | None = None,
        counter_bits: int = 2,
    ):
        if not is_power_of_two(pattern_entries):
            raise ConfigurationError(
                f"pattern entries must be a power of two, got {pattern_entries}"
            )
        width = log2_exact(pattern_entries)
        if history_length is None:
            history_length = width
        if not 1 <= history_length <= width:
            raise ConfigurationError(
                f"local history must be in [1, {width}], got {history_length}"
            )
        if history_entries is None:
            history_entries = pattern_entries
        if not is_power_of_two(history_entries):
            raise ConfigurationError(
                f"history entries must be a power of two, got {history_entries}"
            )
        self.table = CounterTable(pattern_entries, bits=counter_bits)
        self.histories = [0] * history_entries
        self.history_length = history_length
        self._history_mask = (1 << history_length) - 1
        self._history_index_mask = history_entries - 1
        self._pattern_mask = pattern_entries - 1
        self._threshold = self.table.threshold
        self._max_value = self.table.max_value
        self._last_pattern_index = 0
        self._last_history_index = 0

    def predict(self, address: int) -> bool:
        history_index = (address >> ADDRESS_ALIGN_SHIFT) & self._history_index_mask
        pattern_index = self.histories[history_index] & self._pattern_mask
        self._last_history_index = history_index
        self._last_pattern_index = pattern_index
        return self.table.values[pattern_index] >= self._threshold

    def update(self, address: int, taken: bool, predicted: bool) -> None:
        values = self.table.values
        index = self._last_pattern_index
        value = values[index]
        if taken:
            if value < self._max_value:
                values[index] = value + 1
        elif value > 0:
            values[index] = value - 1
        history_index = self._last_history_index
        self.histories[history_index] = (
            (self.histories[history_index] << 1) | taken
        ) & self._history_mask

    @property
    def size_bytes(self) -> float:
        counter_bits = self.table.size_bits
        history_bits = len(self.histories) * self.history_length
        return (counter_bits + history_bits) / 8.0

    def table_entry_counts(self) -> list[int]:
        return [self.table.entries]

    def accessed(self) -> list[tuple[int, int]]:
        return [(0, self._last_pattern_index)]

    def reset(self) -> None:
        self.table.reset()
        for i in range(len(self.histories)):
            self.histories[i] = 0
        self._last_pattern_index = 0
        self._last_history_index = 0


class TournamentPredictor(BranchPredictor):
    """Alpha-21264-style tournament: local side vs global side + chooser.

    Table ids for collision instrumentation: 0 = local pattern table,
    1 = global table, 2 = chooser.
    """

    name = "tournament"
    _PREDICT_STATE = ("_last_chooser_index", "_last_global_index",
                      "_last_global_pred", "_last_local_pred")
    _WIDTHS = {"chooser": "counter_bits", "global_table": "counter_bits",
               "history": "global_width"}

    def __init__(
        self,
        local_pattern_entries: int,
        global_entries: int,
        chooser_entries: int | None = None,
        local_history_entries: int | None = None,
        counter_bits: int = 2,
    ):
        if chooser_entries is None:
            chooser_entries = global_entries
        for label, entries in (
            ("local pattern", local_pattern_entries),
            ("global", global_entries),
            ("chooser", chooser_entries),
        ):
            if not is_power_of_two(entries):
                raise ConfigurationError(
                    f"tournament {label} entries must be a power of two, "
                    f"got {entries}"
                )
        self.local = LocalHistoryPredictor(
            local_pattern_entries,
            history_entries=local_history_entries,
            counter_bits=counter_bits,
        )
        global_width = log2_exact(global_entries)
        self.global_table = CounterTable(global_entries, bits=counter_bits)
        self.chooser = CounterTable(chooser_entries, bits=counter_bits)
        self.history = GlobalHistory(global_width)
        self._global_mask = global_entries - 1
        self._chooser_mask = chooser_entries - 1
        self._threshold = self.global_table.threshold
        self._max_value = self.global_table.max_value
        self._last_global_index = 0
        self._last_chooser_index = 0
        self._last_local_pred = False
        self._last_global_pred = False
        self._last_chose_global = False

    def predict(self, address: int) -> bool:
        local_pred = self.local.predict(address)
        history = self.history.value
        global_index = history & self._global_mask
        chooser_index = history & self._chooser_mask
        global_pred = self.global_table.values[global_index] >= self._threshold
        chose_global = self.chooser.values[chooser_index] >= self._threshold
        self._last_global_index = global_index
        self._last_chooser_index = chooser_index
        self._last_local_pred = local_pred
        self._last_global_pred = global_pred
        self._last_chose_global = chose_global
        return global_pred if chose_global else local_pred

    def _train(self, table: CounterTable, index: int, taken: bool) -> None:
        values = table.values
        value = values[index]
        if taken:
            if value < self._max_value:
                values[index] = value + 1
        elif value > 0:
            values[index] = value - 1

    def update(self, address: int, taken: bool, predicted: bool) -> None:
        # Both sides always train (total update, as in the 21264).
        self.local.update(address, taken, self._last_local_pred)
        self._train(self.global_table, self._last_global_index, taken)
        # The chooser trains only when the sides disagree, toward the
        # side that was right.
        if self._last_local_pred != self._last_global_pred:
            self._train(
                self.chooser,
                self._last_chooser_index,
                self._last_global_pred == taken,
            )
        history = self.history
        history.value = ((history.value << 1) | taken) & history.mask

    def shift_history(self, taken: bool) -> None:
        history = self.history
        history.value = ((history.value << 1) | taken) & history.mask

    @property
    def size_bytes(self) -> float:
        return (
            self.local.size_bytes
            + self.global_table.size_bytes
            + self.chooser.size_bytes
        )

    def table_entry_counts(self) -> list[int]:
        return [
            self.local.table.entries,
            self.global_table.entries,
            self.chooser.entries,
        ]

    def accessed(self) -> list[tuple[int, int]]:
        return [
            (0, self.local._last_pattern_index),
            (1, self._last_global_index),
            (2, self._last_chooser_index),
        ]

    def reset(self) -> None:
        self.local.reset()
        self.global_table.reset()
        self.chooser.reset()
        self.history.reset()
        self._last_global_index = 0
        self._last_chooser_index = 0
        self._last_local_pred = False
        self._last_global_pred = False
        self._last_chose_global = False
