"""The bi-mode predictor (Lee, Chen & Mudge, 1997).

Section 2 of the paper: "The 'bi-mode' predictor is a hybrid predictor
with two gshare components.  The choice predictor is a classic bimodal
predictor whose output is used to choose between the predictions of the
two gshare predictions."

Bi-mode fights destructive aliasing by *channelling branches with similar
behaviour to the same direction table*: the bimodal choice predictor
steers mostly-taken branches to one gshare bank and mostly-not-taken
branches to the other, so counters within a bank tend to be pushed in the
same direction and collisions become constructive.

Update policy (partial update, as described in the paper):

* only the **selected** direction bank is updated with the outcome;
* the choice predictor is always updated with the outcome **except**
  when its choice was opposite to the outcome and the selected direction
  bank nevertheless predicted correctly (changing the choice then would
  evict the branch from a bank that is serving it well).

The paper's simulated version "always chose as many bits of global
history as required by the gshare table", which this implementation
mirrors by default.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.predictors.base import BranchPredictor
from repro.predictors.counters import CounterTable
from repro.predictors.history import GlobalHistory
from repro.utils.bits import ADDRESS_ALIGN_SHIFT, is_power_of_two, log2_exact

__all__ = ["BiModePredictor"]


class BiModePredictor(BranchPredictor):
    """Choice bimodal + two gshare direction banks, partial update.

    Table ids for collision instrumentation: 0 = not-taken direction
    bank, 1 = taken direction bank, 2 = choice table.
    """

    name = "bimode"
    _PREDICT_STATE = ("_last_bank", "_last_choice_index",
                      "_last_choice_taken", "_last_direction_index",
                      "_last_direction_pred")
    _WIDTHS = {"choice": "counter_bits", "direction_banks": "counter_bits",
               "history": "history_length"}

    def __init__(
        self,
        direction_entries: int,
        choice_entries: int,
        history_length: int | None = None,
        counter_bits: int = 2,
    ):
        for label, entries in (
            ("direction", direction_entries),
            ("choice", choice_entries),
        ):
            if not is_power_of_two(entries):
                raise ConfigurationError(
                    f"bi-mode {label} entries must be a power of two, got {entries}"
                )
        direction_width = log2_exact(direction_entries)
        if history_length is None:
            history_length = direction_width
        if not 1 <= history_length <= 2 * direction_width:
            raise ConfigurationError(
                f"bi-mode history must be in [1, {2 * direction_width}], "
                f"got {history_length}"
            )
        # Bank 0 serves branches the choice predictor says are
        # mostly-not-taken; bank 1 the mostly-taken ones.
        self.direction_banks = (
            CounterTable(direction_entries, bits=counter_bits),
            CounterTable(direction_entries, bits=counter_bits),
        )
        self.choice = CounterTable(choice_entries, bits=counter_bits)
        self.history = GlobalHistory(history_length)
        self._direction_mask = direction_entries - 1
        self._direction_width = direction_width
        self._needs_fold = history_length > direction_width
        self._choice_mask = choice_entries - 1
        self._threshold = self.direction_banks[0].threshold
        self._max_value = self.direction_banks[0].max_value
        self._last_direction_index = 0
        self._last_choice_index = 0
        self._last_bank = 0
        self._last_choice_taken = False
        self._last_direction_pred = False

    def predict(self, address: int) -> bool:
        pc = address >> ADDRESS_ALIGN_SHIFT
        history = self.history.value
        if self._needs_fold:
            history ^= history >> self._direction_width
        direction_index = (pc ^ history) & self._direction_mask
        choice_index = pc & self._choice_mask
        choice_taken = self.choice.values[choice_index] >= self._threshold
        bank = 1 if choice_taken else 0
        direction_pred = (
            self.direction_banks[bank].values[direction_index] >= self._threshold
        )
        self._last_direction_index = direction_index
        self._last_choice_index = choice_index
        self._last_bank = bank
        self._last_choice_taken = choice_taken
        self._last_direction_pred = direction_pred
        return direction_pred

    def update(self, address: int, taken: bool, predicted: bool) -> None:
        # Partial update: only the selected direction bank trains.
        values = self.direction_banks[self._last_bank].values
        index = self._last_direction_index
        value = values[index]
        if taken:
            if value < self._max_value:
                values[index] = value + 1
        elif value > 0:
            values[index] = value - 1

        # Choice trains on the outcome unless it disagreed with the
        # outcome while the selected bank still predicted correctly.
        choice_wrong = self._last_choice_taken != taken
        direction_correct = self._last_direction_pred == taken
        if not (choice_wrong and direction_correct):
            choice_values = self.choice.values
            choice_index = self._last_choice_index
            value = choice_values[choice_index]
            if taken:
                if value < self._max_value:
                    choice_values[choice_index] = value + 1
            elif value > 0:
                choice_values[choice_index] = value - 1

        history = self.history
        history.value = ((history.value << 1) | taken) & history.mask

    def shift_history(self, taken: bool) -> None:
        history = self.history
        history.value = ((history.value << 1) | taken) & history.mask

    @property
    def size_bytes(self) -> float:
        return (
            self.direction_banks[0].size_bytes
            + self.direction_banks[1].size_bytes
            + self.choice.size_bytes
        )

    def table_entry_counts(self) -> list[int]:
        return [
            self.direction_banks[0].entries,
            self.direction_banks[1].entries,
            self.choice.entries,
        ]

    def accessed(self) -> list[tuple[int, int]]:
        return [
            (self._last_bank, self._last_direction_index),
            (2, self._last_choice_index),
        ]

    def reset(self) -> None:
        self.direction_banks[0].reset()
        self.direction_banks[1].reset()
        self.choice.reset()
        self.history.reset()
        self._last_direction_index = 0
        self._last_choice_index = 0
        self._last_bank = 0
        self._last_choice_taken = False
        self._last_direction_pred = False
