"""The agree predictor (Sprangle, Chappell, Alsup & Patt, 1997).

Section 3 of the paper describes this related-work mechanism: "They
propose using a table accessed by branch addresses to store a 'bias bit'
for each branch ... instead of using the most significant bit of the
outcome of the simple predictor as the branch prediction they use it to
decide whether to use the 'bias bit' as the prediction."

The counters therefore learn *agreement with the bias bit* rather than
direction.  If two aliasing branches both mostly agree with their
(well-chosen) bias bits, they push the shared counter the same way and
the collision turns constructive -- a purely dynamic answer to the same
destructive-aliasing problem the paper attacks with static hints.  It is
included here as the natural related-work baseline for the ablation
benchmarks.

The bias bit for a branch is set the first time the branch is seen
(first-outcome heuristic, as in the original paper's hardware variant);
:meth:`preset_bias` lets profile-guided callers install biases up front,
modelling the compiler-set variant.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.predictors.base import BranchPredictor
from repro.predictors.counters import CounterTable
from repro.predictors.history import GlobalHistory
from repro.utils.bits import ADDRESS_ALIGN_SHIFT, is_power_of_two, log2_exact

__all__ = ["AgreePredictor"]


class AgreePredictor(BranchPredictor):
    """gshare-indexed agree counters + PC-indexed bias bits.

    Table ids for collision instrumentation: 0 = agree counter table.
    (The bias table is PC-indexed per branch and deliberately excluded:
    collisions there are a capacity effect this study does not model.)
    """

    name = "agree"
    _PREDICT_STATE = ("_last_bias_index", "_last_index")
    _WIDTHS = {"history": "history_length", "table": "counter_bits"}

    def __init__(
        self,
        entries: int,
        bias_entries: int | None = None,
        history_length: int | None = None,
        counter_bits: int = 2,
    ):
        if not is_power_of_two(entries):
            raise ConfigurationError(
                f"agree entries must be a power of two, got {entries}"
            )
        if bias_entries is None:
            bias_entries = entries
        if not is_power_of_two(bias_entries):
            raise ConfigurationError(
                f"agree bias entries must be a power of two, got {bias_entries}"
            )
        width = log2_exact(entries)
        if history_length is None:
            history_length = width
        if not 1 <= history_length <= width:
            raise ConfigurationError(
                f"agree history must be in [1, {width}], got {history_length}"
            )
        self.table = CounterTable(entries, bits=counter_bits)
        # Start counters at "weakly agree": agreement is the common case.
        self.table.reset(self.table.threshold)
        self.history = GlobalHistory(history_length)
        # bias[i] in {-1 unset, 0 not-taken, 1 taken}
        self.bias = [-1] * bias_entries
        self._bias_mask = bias_entries - 1
        self._mask = entries - 1
        self._threshold = self.table.threshold
        self._max_value = self.table.max_value
        self._last_index = 0
        self._last_bias_index = 0
        self._last_agree_pred = False

    def preset_bias(self, address: int, taken: bool) -> None:
        """Install a (profile-derived) bias bit for a branch address."""
        self.bias[(address >> ADDRESS_ALIGN_SHIFT) & self._bias_mask] = 1 if taken else 0

    def predict(self, address: int) -> bool:
        pc = address >> ADDRESS_ALIGN_SHIFT
        index = (pc ^ self.history.value) & self._mask
        bias_index = pc & self._bias_mask
        self._last_index = index
        self._last_bias_index = bias_index
        agree = self.table.values[index] >= self._threshold
        self._last_agree_pred = agree
        bias = self.bias[bias_index]
        if bias < 0:
            # Bias not yet set: fall back to predicting taken (backward
            # branches dominate), bias installs on the first update.
            return agree
        return bool(bias) == agree

    def update(self, address: int, taken: bool, predicted: bool) -> None:
        bias_index = self._last_bias_index
        bias = self.bias[bias_index]
        if bias < 0:
            # First encounter: the bias bit latches the first outcome.
            self.bias[bias_index] = 1 if taken else 0
            bias = 1 if taken else 0
        agreed = bool(bias) == taken
        values = self.table.values
        index = self._last_index
        value = values[index]
        if agreed:
            if value < self._max_value:
                values[index] = value + 1
        elif value > 0:
            values[index] = value - 1
        history = self.history
        history.value = ((history.value << 1) | taken) & history.mask

    def shift_history(self, taken: bool) -> None:
        history = self.history
        history.value = ((history.value << 1) | taken) & history.mask

    @property
    def size_bytes(self) -> float:
        # 2-bit agree counters plus 1 bias bit per bias entry.
        return self.table.size_bytes + len(self.bias) / 8.0

    def table_entry_counts(self) -> list[int]:
        return [self.table.entries]

    def accessed(self) -> list[tuple[int, int]]:
        return [(0, self._last_index)]

    def reset(self) -> None:
        self.table.reset(self.table.threshold)
        self.history.reset()
        for i in range(len(self.bias)):
            self.bias[i] = -1
        self._last_index = 0
        self._last_bias_index = 0
        self._last_agree_pred = False
