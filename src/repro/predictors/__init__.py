"""Dynamic branch predictors.

This subpackage implements the five dynamic prediction schemes the paper
simulates, plus related-work baselines used by the ablation benchmarks:

* :mod:`repro.predictors.bimodal` -- the classic Smith bimodal predictor
  (a PC-indexed table of 2-bit saturating counters);
* :mod:`repro.predictors.ghist` -- "ghist" (GAg): a table indexed purely
  by the global branch-outcome history register;
* :mod:`repro.predictors.gshare` -- McFarling's gshare (PC XOR history);
* :mod:`repro.predictors.bimode` -- the bi-mode hybrid (choice bimodal
  steering two gshare direction tables, partial update);
* :mod:`repro.predictors.gskew` -- the 2bcgskew hybrid (bimodal +
  e-gskew majority vote + meta chooser, partial update);
* :mod:`repro.predictors.agree` -- the Sprangle et al. agree predictor
  (related work, used as an ablation baseline);
* :mod:`repro.predictors.alwaystaken` -- trivial static baselines.

Shared infrastructure lives in :mod:`~repro.predictors.counters`
(saturating counter tables), :mod:`~repro.predictors.history` (the global
history register), :mod:`~repro.predictors.indexing` (index hashes and
the e-gskew skewing functions), :mod:`~repro.predictors.collisions`
(the paper's tag-based collision instrumentation) and
:mod:`~repro.predictors.sizing` (byte-budget decomposition and the
predictor factory).
"""

from repro.predictors.agree import AgreePredictor
from repro.predictors.alwaystaken import AlwaysTakenPredictor, StaticBiasPredictor
from repro.predictors.base import BranchPredictor
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.bimode import BiModePredictor
from repro.predictors.collisions import CollisionCounts, CollisionTracker
from repro.predictors.ghist import GhistPredictor
from repro.predictors.gshare import GsharePredictor
from repro.predictors.gskew import TwoBcGskewPredictor
from repro.predictors.local import LocalHistoryPredictor, TournamentPredictor
from repro.predictors.yags import YagsPredictor
from repro.predictors.sizing import PREDICTOR_NAMES, make_predictor

__all__ = [
    "BranchPredictor",
    "BimodalPredictor",
    "GhistPredictor",
    "GsharePredictor",
    "BiModePredictor",
    "TwoBcGskewPredictor",
    "AgreePredictor",
    "YagsPredictor",
    "LocalHistoryPredictor",
    "TournamentPredictor",
    "AlwaysTakenPredictor",
    "StaticBiasPredictor",
    "CollisionTracker",
    "CollisionCounts",
    "make_predictor",
    "PREDICTOR_NAMES",
]
