"""The global branch-outcome history register ("ghist" register).

Section 2 of the paper: "The 'ghist' register maintains the 'global
branch history'.  It simply is a record of the outcomes of past few
branches in the running program."

The register is a shift register: when a branch resolves, its outcome is
shifted in at the low end.  Whether *statically predicted* branches shift
their outcomes in is the knob studied in Table 4 of the paper; the
register itself doesn't know about that policy -- the combined predictor
decides when to call :meth:`GlobalHistory.shift`.

Hot loops read/write :attr:`GlobalHistory.value` directly.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = ["GlobalHistory"]


class GlobalHistory:
    """A ``length``-bit global outcome shift register.

    Attributes
    ----------
    value:
        Current register contents; bit 0 is the most recent outcome.
    mask:
        ``2**length - 1``.
    """

    __slots__ = ("length", "mask", "value")

    _WIDTHS = {"value": "length"}

    def __init__(self, length: int):
        if length < 0:
            raise ConfigurationError(f"history length must be >= 0, got {length}")
        if length > 64:
            raise ConfigurationError(
                f"history length {length} exceeds the 64-bit register model"
            )
        self.length = length
        self.mask = (1 << length) - 1
        self.value = 0

    def shift(self, taken: bool) -> None:
        """Shift one resolved outcome into the register."""
        self.value = ((self.value << 1) | taken) & self.mask

    def reset(self) -> None:
        """Clear the register (all not-taken)."""
        self.value = 0

    def import_value(self, value: int) -> None:
        """Adopt a kernel-computed register value (for repro.kernels).

        The mask comparison is the identity exactly on ``[0, mask]``,
        so an out-of-range value is rejected, never silently truncated.
        """
        masked = value & self.mask
        if masked != value:
            raise ConfigurationError(
                f"imported history value {value:#x} does not fit "
                f"{self.length} bits"
            )
        self.value = masked

    def bits(self) -> tuple[bool, ...]:
        """The register contents as booleans, most recent first."""
        return tuple(bool((self.value >> i) & 1) for i in range(self.length))

    def __repr__(self) -> str:
        if self.length == 0:
            return "GlobalHistory(length=0)"
        pattern = format(self.value, f"0{self.length}b")
        return f"GlobalHistory(length={self.length}, value=0b{pattern})"
