"""Saturating up/down counter tables.

Every dynamic predictor in the paper is built from tables of n-bit
saturating counters (n = 2 throughout the paper).  A counter is
incremented when its branch resolves taken, decremented when not taken,
and saturates at both ends; the most significant bit is the prediction.

Hot simulation loops in the predictor classes read and write
:attr:`CounterTable.values` directly (a plain Python list) rather than
going through the methods here -- CPython method-call overhead would
dominate otherwise.  The methods exist for construction, tests, and
non-hot callers, and define the semantics the inlined code must match.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.utils.bits import is_power_of_two

__all__ = ["CounterTable", "WEAKLY_NOT_TAKEN", "WEAKLY_TAKEN"]

WEAKLY_NOT_TAKEN = 1
"""Conventional initial value for 2-bit counters (01 = weakly not taken)."""

WEAKLY_TAKEN = 2
"""The other conventional initial value (10 = weakly taken)."""


class CounterTable:
    """A power-of-two table of n-bit saturating counters.

    Attributes
    ----------
    values:
        The raw counter storage (list of ints in ``[0, 2**bits - 1]``).
        Hot code may index this directly.
    mask:
        ``entries - 1``; AND-ing any index hash with this keeps it in
        range.
    threshold:
        Counter values >= threshold predict taken (the MSB test).
    max_value:
        The saturation ceiling, ``2**bits - 1``.
    """

    __slots__ = ("entries", "bits", "values", "mask", "threshold", "max_value")

    _WIDTHS = {"values": "bits"}

    def __init__(self, entries: int, bits: int = 2, initial: int | None = None):
        if not is_power_of_two(entries):
            raise ConfigurationError(
                f"counter table size must be a power of two, got {entries}"
            )
        if bits < 1:
            raise ConfigurationError(f"counter width must be >= 1 bit, got {bits}")
        self.entries = entries
        self.bits = bits
        self.max_value = (1 << bits) - 1
        self.threshold = 1 << (bits - 1)
        if initial is None:
            initial = self.threshold - 1  # weakly not taken
        if not 0 <= initial <= self.max_value:
            raise ConfigurationError(
                f"initial counter value {initial} out of range [0, {self.max_value}]"
            )
        self.values = [initial] * entries
        self.mask = entries - 1

    @property
    def size_bits(self) -> int:
        """Total storage in bits."""
        return self.entries * self.bits

    @property
    def size_bytes(self) -> float:
        """Total storage in bytes (may be fractional for odd widths)."""
        return self.size_bits / 8.0

    def predict(self, index: int) -> bool:
        """The MSB of the counter at ``index`` (True = predict taken)."""
        return self.values[index] >= self.threshold

    def update(self, index: int, taken: bool) -> None:
        """Saturating increment (taken) or decrement (not taken)."""
        value = self.values[index]
        if taken:
            if value < self.max_value:
                self.values[index] = value + 1
        elif value > 0:
            self.values[index] = value - 1

    def strengthen(self, index: int, direction: bool) -> None:
        """Push the counter toward ``direction`` (same as update)."""
        self.update(index, direction)

    def reset(self, initial: int | None = None) -> None:
        """Reset every counter, defaulting to weakly-not-taken."""
        if initial is None:
            initial = self.threshold - 1
        if not 0 <= initial <= self.max_value:
            raise ConfigurationError(
                f"initial counter value {initial} out of range [0, {self.max_value}]"
            )
        for i in range(self.entries):
            self.values[i] = initial

    def export_array(self):
        """The counter states as a numpy array (for repro.kernels).

        The dtype is the width declaration made executable: tables
        whose counters fit a hardware byte export as ``uint8``, wider
        (model-only) tables as ``int64``.  Callers may mutate the
        returned copy freely; :meth:`import_array` adopts it back.
        """
        import numpy

        dtype = numpy.uint8 if self.bits <= 8 else numpy.int64
        return numpy.asarray(self.values, dtype=dtype)

    def import_array(self, values) -> None:
        """Adopt kernel-computed counter states (for repro.kernels).

        ``values`` is an integer array of shape ``(entries,)``.  Every
        state must already be saturated into ``[0, max_value]``; the
        mask comparison below is the identity exactly on that range, so
        a kernel that drifted out of range is rejected rather than
        silently wrapped.
        """
        import numpy

        array = numpy.asarray(values)
        if array.shape != (self.entries,):
            raise ConfigurationError(
                f"imported counter array has shape {array.shape}, "
                f"expected ({self.entries},)"
            )
        masked = array & self.max_value
        if not numpy.array_equal(masked, array):
            raise ConfigurationError(
                f"imported counter states escape [0, {self.max_value}]"
            )
        self.values = masked.tolist()

    def check_invariants(self) -> None:
        """Assert all counters are in range (used by property tests)."""
        for i, value in enumerate(self.values):
            if not 0 <= value <= self.max_value:
                raise AssertionError(
                    f"counter {i} holds {value}, outside [0, {self.max_value}]"
                )

    def __len__(self) -> int:
        return self.entries

    def __repr__(self) -> str:
        return f"CounterTable(entries={self.entries}, bits={self.bits})"
