"""The 2bcgskew hybrid predictor (Seznec & Michaud).

Section 2 of the paper: "The '2bcgskew' predictor is another hybrid
predictor with two component predictors.  One of the component predictors
is a bimodal predictor.  The other component, called 'c-gskew', is itself
another hybrid predictor with a bimodal and two gshare components.  The
same bimodal predictor is actually used both as a component of the final
predictor and a sub-component of the other component predictor.  There is
no choice predictor for the component hybrid predictor.  Instead, a
majority vote is taken to choose among the three outcomes from the
sub-component predictors.  The meta-predictor for the overall predictor
is a gshare predictor that chooses between the outcome of the bimodal and
the majority vote."

Four equal banks of 2-bit counters: BIM (PC-indexed), G0 and G1
(skew-indexed over PC and per-bank history lengths -- the "indexing
functions ... chosen carefully to avoid/minimize destructive aliasing"),
and META (gshare-indexed chooser).

Partial update policy, straight from the paper's bullet list:

* on a **bad** overall prediction, all three banks of the c-gskew
  component (BIM, G0, G1) are updated with the outcome;
* on a **correct** overall prediction, only the banks participating in
  the correct prediction are updated (BIM alone when the meta chose the
  bimodal side; the agreeing banks of the majority when it chose the
  vote);
* the meta-predictor is updated **only when the two components
  disagree**, reinforced toward whichever component was right.

The per-bank history lengths default to the "best lengths" shape Seznec
reports (short history for G0, full index width for G1, intermediate for
the meta) and are overridable; ``benchmarks/test_ablations.py`` sweeps
them.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.predictors.base import BranchPredictor
from repro.predictors.counters import CounterTable
from repro.predictors.history import GlobalHistory
from repro.utils.bits import ADDRESS_ALIGN_SHIFT, is_power_of_two, log2_exact
from repro.predictors.indexing import skew_tables

__all__ = ["TwoBcGskewPredictor"]

_BIM, _G0, _G1, _META = range(4)


class TwoBcGskewPredictor(BranchPredictor):
    """Bimodal + e-gskew majority + gshare meta chooser.

    Table ids for collision instrumentation: 0 = BIM, 1 = G0, 2 = G1,
    3 = META.
    """

    name = "2bcgskew"
    _PREDICT_STATE = ("_bim_pred", "_g0_pred", "_g1_pred",
                      "_gskew_pred", "_meta_choice_gskew")
    _WIDTHS = {"banks": "counter_bits", "history": "history_length"}

    def __init__(
        self,
        bank_entries: int,
        g0_history: int | None = None,
        g1_history: int | None = None,
        meta_history: int | None = None,
        counter_bits: int = 2,
    ):
        if not is_power_of_two(bank_entries):
            raise ConfigurationError(
                f"2bcgskew bank entries must be a power of two, got {bank_entries}"
            )
        width = log2_exact(bank_entries)
        if width < 2:
            raise ConfigurationError(
                f"2bcgskew banks need at least 4 entries, got {bank_entries}"
            )
        if g0_history is None:
            g0_history = max(1, width // 2)
        if g1_history is None:
            g1_history = width
        if meta_history is None:
            meta_history = max(1, width // 2 + 1)
        for label, h in (("g0", g0_history), ("g1", g1_history), ("meta", meta_history)):
            if not 0 <= h <= width:
                raise ConfigurationError(
                    f"2bcgskew {label} history must be in [0, {width}], got {h}"
                )
        self.banks = tuple(CounterTable(bank_entries, bits=counter_bits) for _ in range(4))
        # BIM starts weakly taken so the majority vote is not uniformly
        # biased not-taken at power-on (Seznec initializes similarly).
        self.banks[_BIM].reset(self.banks[_BIM].threshold)
        # The longest bank history bounds the architectural register.
        history_length = max(g0_history, g1_history, meta_history, 1)
        self.history = GlobalHistory(history_length)
        self._width = width
        self._mask = bank_entries - 1
        self._g0_hist_mask = (1 << g0_history) - 1
        self._g1_hist_mask = (1 << g1_history) - 1
        self._meta_hist_mask = (1 << meta_history) - 1
        self.g0_history = g0_history
        self.g1_history = g1_history
        self.meta_history = meta_history
        tables = skew_tables(width)
        self._h = tables.h
        self._h_inv = tables.h_inv
        self._threshold = self.banks[0].threshold
        self._max_value = self.banks[0].max_value
        # Cached lookup state (see BranchPredictor.update contract).
        self._idx = [0, 0, 0, 0]
        self._bim_pred = False
        self._g0_pred = False
        self._g1_pred = False
        self._gskew_pred = False
        self._meta_choice_gskew = False

    def predict(self, address: int) -> bool:
        pc = address >> ADDRESS_ALIGN_SHIFT
        mask = self._mask
        history = self.history.value
        c1 = pc & mask
        c2 = (pc >> self._width) & mask

        bim_index = c1
        g0_index = (self._h[c1] ^ self._h_inv[c2] ^ (history & self._g0_hist_mask)) & mask
        g1_index = (
            self._h_inv[c1] ^ c2 ^ self._h[history & self._g1_hist_mask]
        ) & mask
        meta_index = (pc ^ (history & self._meta_hist_mask)) & mask

        threshold = self._threshold
        banks = self.banks
        bim_pred = banks[_BIM].values[bim_index] >= threshold
        g0_pred = banks[_G0].values[g0_index] >= threshold
        g1_pred = banks[_G1].values[g1_index] >= threshold
        # Majority vote over (BIM, G0, G1).
        gskew_pred = (bim_pred + g0_pred + g1_pred) >= 2
        meta_choice_gskew = banks[_META].values[meta_index] >= threshold
        final = gskew_pred if meta_choice_gskew else bim_pred

        idx = self._idx
        idx[0] = bim_index
        idx[1] = g0_index
        idx[2] = g1_index
        idx[3] = meta_index
        self._bim_pred = bim_pred
        self._g0_pred = g0_pred
        self._g1_pred = g1_pred
        self._gskew_pred = gskew_pred
        self._meta_choice_gskew = meta_choice_gskew
        return final

    def _train_bank(self, bank_id: int, taken: bool) -> None:
        values = self.banks[bank_id].values
        index = self._idx[bank_id]
        value = values[index]
        if taken:
            if value < self._max_value:
                values[index] = value + 1
        elif value > 0:
            values[index] = value - 1

    def update(self, address: int, taken: bool, predicted: bool) -> None:
        if predicted != taken:
            # Bad overall prediction: train all three c-gskew banks.
            self._train_bank(_BIM, taken)
            self._train_bank(_G0, taken)
            self._train_bank(_G1, taken)
        elif self._meta_choice_gskew:
            # Correct via the majority vote: strengthen only the banks
            # that participated in (agreed with) the correct prediction.
            if self._bim_pred == taken:
                self._train_bank(_BIM, taken)
            if self._g0_pred == taken:
                self._train_bank(_G0, taken)
            if self._g1_pred == taken:
                self._train_bank(_G1, taken)
        else:
            # Correct via the bimodal side: strengthen the bimodal only.
            self._train_bank(_BIM, taken)

        # Meta trains only when the two components disagree, toward the
        # component that was right.
        if self._bim_pred != self._gskew_pred:
            self._train_bank(_META, self._gskew_pred == taken)

        history = self.history
        history.value = ((history.value << 1) | taken) & history.mask

    def shift_history(self, taken: bool) -> None:
        history = self.history
        history.value = ((history.value << 1) | taken) & history.mask

    @property
    def size_bytes(self) -> float:
        return sum(bank.size_bytes for bank in self.banks)

    def table_entry_counts(self) -> list[int]:
        return [bank.entries for bank in self.banks]

    def accessed(self) -> list[tuple[int, int]]:
        idx = self._idx
        return [(0, idx[0]), (1, idx[1]), (2, idx[2]), (3, idx[3])]

    def reset(self) -> None:
        for bank in self.banks:
            bank.reset()
        self.banks[_BIM].reset(self.banks[_BIM].threshold)
        self.history.reset()
        self._idx = [0, 0, 0, 0]
        self._bim_pred = False
        self._g0_pred = False
        self._g1_pred = False
        self._gskew_pred = False
        self._meta_choice_gskew = False
