"""Tag-based collision instrumentation (Figures 1-6 of the paper).

Section 5: "The collisions were counted by maintaining a tag for each
counter in the dynamic predictor.  The tag for a counter was used to
store the address of the last branch using that counter.  When we looked
up the table of counters ... if the address of the branch did not match
the tag then we counted the event as a collision.  ...  When we found a
collision, if the overall prediction was correct we considered the
collision as constructive otherwise we considered it destructive."

This is *simulation instrumentation*, not modelled hardware: the tag
arrays exist only in the tracker.  The tracker observes any
:class:`~repro.predictors.base.BranchPredictor` through its ``accessed()``
hook, so the same code instruments a single-table gshare and a four-bank
2bcgskew.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.predictors.base import BranchPredictor

__all__ = ["CollisionCounts", "CollisionTracker"]


@dataclass(slots=True)
class CollisionCounts:
    """Aggregate collision statistics for one simulation run."""

    lookups: int = 0
    """Counter lookups observed (one per table per predicted branch)."""
    collisions: int = 0
    """Lookups whose tag held a different branch's address."""
    constructive: int = 0
    """Collisions on branches whose overall prediction was correct."""
    destructive: int = 0
    """Collisions on branches whose overall prediction was wrong."""

    @property
    def collision_rate(self) -> float:
        """Collisions per lookup."""
        if self.lookups == 0:
            return 0.0
        return self.collisions / self.lookups

    @property
    def destructive_fraction(self) -> float:
        """Fraction of collisions classified destructive."""
        if self.collisions == 0:
            return 0.0
        return self.destructive / self.collisions

    def merge(self, other: "CollisionCounts") -> None:
        """Accumulate another run's counts into this one."""
        self.lookups += other.lookups
        self.collisions += other.collisions
        self.constructive += other.constructive
        self.destructive += other.destructive


class CollisionTracker:
    """Per-counter last-user tags over a predictor's tables.

    Usage by the simulator, per dynamically predicted branch::

        n = tracker.observe_lookup(address)      # after predict()
        tracker.classify(n, prediction_correct)  # after resolution
    """

    def __init__(self, predictor: BranchPredictor):
        self.predictor = predictor
        # -1 marks "never used"; first use of a counter is not a
        # collision (there is no previous branch to collide with).
        self.tags: list[list[int]] = [
            [-1] * entries for entries in predictor.table_entry_counts()
        ]
        self.counts = CollisionCounts()

    def observe_lookup(self, address: int) -> int:
        """Record the predictor's latest lookup; return collisions seen.

        Must be called after ``predictor.predict(address)`` and before
        the corresponding ``update`` (updates may change accessed()).
        """
        collisions = 0
        counts = self.counts
        tags = self.tags
        for table_id, index in self.predictor.accessed():
            counts.lookups += 1
            table_tags = tags[table_id]
            previous = table_tags[index]
            if previous >= 0 and previous != address:
                collisions += 1
            table_tags[index] = address
        counts.collisions += collisions
        return collisions

    def classify(self, collisions: int, prediction_correct: bool) -> None:
        """Attribute this branch's collisions as constructive/destructive."""
        if collisions == 0:
            return
        if prediction_correct:
            self.counts.constructive += collisions
        else:
            self.counts.destructive += collisions

    def reset(self) -> None:
        """Clear tags and counts."""
        for table_tags in self.tags:
            for i in range(len(table_tags)):
                table_tags[i] = -1
        self.counts = CollisionCounts()
