"""The gshare predictor (McFarling, 1993).

Section 2 of the paper: "The 'gshare' branch prediction scheme tries to
capture the best of the 'bimodal' and the 'ghist' prediction schemes.
The index for accessing the hardware table of counters is computed using
both the address of the branch being predicted and the value of the
'ghist' register."

gshare is the base predictor for the paper's Figures 1-6 (size sweep with
and without static prediction) and Figure 13 (cross-training).  The
history length is a tunable: the paper notes "the 'best' value of history
length varies with hardware table sizes and with programs"; the default
here is the classic full-index-width history.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.predictors.base import BranchPredictor
from repro.predictors.counters import CounterTable
from repro.predictors.history import GlobalHistory
from repro.utils.bits import ADDRESS_ALIGN_SHIFT, is_power_of_two, log2_exact

__all__ = ["GsharePredictor"]


class GsharePredictor(BranchPredictor):
    """PC-XOR-history indexed table of 2-bit saturating counters."""

    name = "gshare"
    _PREDICT_STATE = ("_last_index",)
    _WIDTHS = {"history": "history_length", "table": "counter_bits"}

    def __init__(
        self,
        entries: int,
        history_length: int | None = None,
        counter_bits: int = 2,
    ):
        if not is_power_of_two(entries):
            raise ConfigurationError(
                f"gshare entries must be a power of two, got {entries}"
            )
        width = log2_exact(entries)
        if history_length is None:
            # The paper notes the best gshare history length "varies with
            # hardware table sizes and with programs".  For the trace
            # scales this reproduction runs, a short history wins the
            # sweep (see benchmarks/test_ablations.py); 8 bits is the
            # default best-length choice, capped by the index width.
            history_length = min(width, 8)
        if history_length < 1:
            raise ConfigurationError(
                f"gshare needs at least 1 history bit, got {history_length}"
            )
        if history_length > 2 * width:
            raise ConfigurationError(
                f"gshare history ({history_length}) longer than twice the index "
                f"width ({width}) is not supported by the fast fold"
            )
        self.table = CounterTable(entries, bits=counter_bits)
        self.history = GlobalHistory(history_length)
        self._index_mask = entries - 1
        self._width = width
        self._needs_fold = history_length > width
        self._threshold = self.table.threshold
        self._max_value = self.table.max_value
        self._last_index = 0

    def _index(self, address: int) -> int:
        history = self.history.value
        if self._needs_fold:
            history ^= history >> self._width
        return ((address >> ADDRESS_ALIGN_SHIFT) ^ history) & self._index_mask

    def predict(self, address: int) -> bool:
        index = self._index(address)
        self._last_index = index
        return self.table.values[index] >= self._threshold

    def update(self, address: int, taken: bool, predicted: bool) -> None:
        index = self._last_index
        values = self.table.values
        value = values[index]
        if taken:
            if value < self._max_value:
                values[index] = value + 1
        elif value > 0:
            values[index] = value - 1
        history = self.history
        history.value = ((history.value << 1) | taken) & history.mask

    def shift_history(self, taken: bool) -> None:
        history = self.history
        history.value = ((history.value << 1) | taken) & history.mask

    @property
    def size_bytes(self) -> float:
        return self.table.size_bytes

    def table_entry_counts(self) -> list[int]:
        return [self.table.entries]

    def accessed(self) -> list[tuple[int, int]]:
        return [(0, self._last_index)]

    def reset(self) -> None:
        self.table.reset()
        self.history.reset()
        self._last_index = 0
