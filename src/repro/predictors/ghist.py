"""The ghist predictor (GAg in Yeh & Patt's taxonomy).

Section 2 of the paper: "The table of saturating up-down counters in a
ghist predictor is indexed using a 'ghist' register ... a record of the
outcomes of past few branches in the running program."

Because the index contains *no address bits at all*, every branch
executing under the same recent outcome history shares a counter -- ghist
is the most aliasing-prone scheme in the study, which is exactly why the
paper sees its largest static-prediction wins here (up to 75% MISP/KI
improvement for m88ksim): statically predicting highly biased branches
keeps them out of the table, and (with no-shift) out of the history,
leaving the whole table to the correlated branches ghist is good at.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.predictors.base import BranchPredictor
from repro.predictors.counters import CounterTable
from repro.predictors.history import GlobalHistory
from repro.utils.bits import is_power_of_two, log2_exact

__all__ = ["GhistPredictor"]


class GhistPredictor(BranchPredictor):
    """History-indexed table of 2-bit saturating counters."""

    name = "ghist"
    _PREDICT_STATE = ("_last_index",)
    _WIDTHS = {"history": "history_length", "table": "counter_bits"}

    def __init__(
        self,
        entries: int,
        history_length: int | None = None,
        counter_bits: int = 2,
    ):
        if not is_power_of_two(entries):
            raise ConfigurationError(
                f"ghist entries must be a power of two, got {entries}"
            )
        width = log2_exact(entries)
        if history_length is None:
            history_length = width
        if history_length < width:
            raise ConfigurationError(
                f"ghist history ({history_length}) shorter than index width "
                f"({width}) would leave table entries unreachable"
            )
        if history_length > 2 * width:
            raise ConfigurationError(
                f"ghist history ({history_length}) longer than twice the index "
                f"width ({width}) is not supported by the fast fold"
            )
        self.table = CounterTable(entries, bits=counter_bits)
        self.history = GlobalHistory(history_length)
        self._index_mask = entries - 1
        self._needs_fold = history_length > width
        self._width = width
        self._threshold = self.table.threshold
        self._max_value = self.table.max_value
        self._last_index = 0

    def _index(self) -> int:
        value = self.history.value
        if self._needs_fold:
            value ^= value >> self._width
        return value & self._index_mask

    def predict(self, address: int) -> bool:
        index = self._index()
        self._last_index = index
        return self.table.values[index] >= self._threshold

    def update(self, address: int, taken: bool, predicted: bool) -> None:
        index = self._last_index
        values = self.table.values
        value = values[index]
        if taken:
            if value < self._max_value:
                values[index] = value + 1
        elif value > 0:
            values[index] = value - 1
        history = self.history
        history.value = ((history.value << 1) | taken) & history.mask

    def shift_history(self, taken: bool) -> None:
        history = self.history
        history.value = ((history.value << 1) | taken) & history.mask

    @property
    def size_bytes(self) -> float:
        return self.table.size_bytes

    def table_entry_counts(self) -> list[int]:
        return [self.table.entries]

    def accessed(self) -> list[tuple[int, int]]:
        return [(0, self._last_index)]

    def reset(self) -> None:
        self.table.reset()
        self.history.reset()
        self._last_index = 0
