"""Hardware-budget accounting and the predictor factory.

The paper parameterizes every predictor by its total hardware budget in
bytes ("a 16 Kbyte gshare"), with 2-bit counters throughout, so a budget
of B bytes buys 4*B counters.  This module decomposes byte budgets into
per-table entry counts for each scheme and exposes
:func:`make_predictor`, the single constructor used by experiments,
benchmarks, and the CLI:

========== =============================================================
scheme     budget decomposition (C = 4 * bytes counters)
========== =============================================================
bimodal    one table of C counters
ghist      one table of C counters, history = log2(C)
gshare     one table of C counters, history = log2(C)
bimode     two direction banks of C/4 each + choice bank of C/2
2bcgskew   four banks (BIM, G0, G1, META) of C/4 each
agree      largest power-of-two E with 3*E bits <= budget
           (E 2-bit agree counters + E bias bits)
local      pattern table of C/4 counters + C/16 per-branch history
           registers of log2(C/4) bits
tournament local side (C/8 pattern + C/32 histories) + global C/4 +
           chooser C/4
yags       choice of C/2 + two tagged caches of C/16 entries each
           (2-bit counter + 6-bit tag per entry)
========== =============================================================
"""

from __future__ import annotations

from typing import Callable

from repro.errors import SizingError
from repro.predictors.agree import AgreePredictor
from repro.predictors.base import BranchPredictor
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.bimode import BiModePredictor
from repro.predictors.ghist import GhistPredictor
from repro.predictors.gshare import GsharePredictor
from repro.predictors.gskew import TwoBcGskewPredictor
from repro.predictors.local import LocalHistoryPredictor, TournamentPredictor
from repro.predictors.yags import YagsPredictor
from repro.utils.bits import is_power_of_two

__all__ = ["make_predictor", "PREDICTOR_NAMES", "counters_for_budget"]

PREDICTOR_NAMES = (
    "bimodal", "ghist", "gshare", "bimode", "2bcgskew",
    "agree", "yags", "local", "tournament",
)
"""The paper's five schemes plus ablation baselines: the agree predictor
(Sprangle et al.), YAGS (Eden & Mudge), a PAg local-history predictor,
and the Alpha 21264 tournament predictor."""

KIB = 1024


def counters_for_budget(size_bytes: int) -> int:
    """Number of 2-bit counters a byte budget buys (C = 4 * bytes)."""
    if size_bytes <= 0:
        raise SizingError(f"predictor budget must be positive, got {size_bytes}")
    return size_bytes * 4


def _require_power_of_two(size_bytes: int, scheme: str, minimum: int) -> None:
    if not is_power_of_two(size_bytes):
        raise SizingError(
            f"{scheme} budget must be a power of two bytes, got {size_bytes}"
        )
    if size_bytes < minimum:
        raise SizingError(
            f"{scheme} budget must be at least {minimum} bytes, got {size_bytes}"
        )


def _make_bimodal(size_bytes: int, **kwargs) -> BimodalPredictor:
    _require_power_of_two(size_bytes, "bimodal", 1)
    return BimodalPredictor(counters_for_budget(size_bytes), **kwargs)


def _make_ghist(size_bytes: int, **kwargs) -> GhistPredictor:
    _require_power_of_two(size_bytes, "ghist", 1)
    return GhistPredictor(counters_for_budget(size_bytes), **kwargs)


def _make_gshare(size_bytes: int, **kwargs) -> GsharePredictor:
    _require_power_of_two(size_bytes, "gshare", 1)
    return GsharePredictor(counters_for_budget(size_bytes), **kwargs)


def _make_bimode(size_bytes: int, **kwargs) -> BiModePredictor:
    _require_power_of_two(size_bytes, "bimode", 2)
    counters = counters_for_budget(size_bytes)
    return BiModePredictor(
        direction_entries=counters // 4,
        choice_entries=counters // 2,
        **kwargs,
    )


def _make_2bcgskew(size_bytes: int, **kwargs) -> TwoBcGskewPredictor:
    _require_power_of_two(size_bytes, "2bcgskew", 4)
    counters = counters_for_budget(size_bytes)
    return TwoBcGskewPredictor(bank_entries=counters // 4, **kwargs)


def _make_agree(size_bytes: int, **kwargs) -> AgreePredictor:
    _require_power_of_two(size_bytes, "agree", 1)
    bits = size_bytes * 8
    entries = 1
    while entries * 2 * 3 <= bits:
        entries *= 2
    return AgreePredictor(entries, bias_entries=entries, **kwargs)


def _make_yags(size_bytes: int, **kwargs) -> YagsPredictor:
    _require_power_of_two(size_bytes, "yags", 8)
    counters = counters_for_budget(size_bytes)
    # Choice gets half the counter budget (C/2 entries = bytes/2).  Each
    # tagged cache entry costs 2 + 6 = 8 bits, so two caches of C/16
    # entries exactly fill the other half.
    return YagsPredictor(
        cache_entries=counters // 16,
        choice_entries=counters // 2,
        **kwargs,
    )


def _make_local(size_bytes: int, **kwargs) -> LocalHistoryPredictor:
    _require_power_of_two(size_bytes, "local", 4)
    counters = counters_for_budget(size_bytes)
    # Pattern table C/4 entries (2 bits each) plus C/16 per-branch
    # history registers of log2(C/4) bits fits comfortably in the budget
    # at every size >= 4 bytes.
    pattern = counters // 4
    return LocalHistoryPredictor(
        pattern,
        history_entries=max(1, pattern // 4),
        **kwargs,
    )


def _make_tournament(size_bytes: int, **kwargs) -> TournamentPredictor:
    _require_power_of_two(size_bytes, "tournament", 16)
    counters = counters_for_budget(size_bytes)
    return TournamentPredictor(
        local_pattern_entries=counters // 8,
        global_entries=counters // 4,
        chooser_entries=counters // 4,
        local_history_entries=max(1, counters // 32),
        **kwargs,
    )


_FACTORIES: dict[str, Callable[..., BranchPredictor]] = {
    "bimodal": _make_bimodal,
    "ghist": _make_ghist,
    "gshare": _make_gshare,
    "bimode": _make_bimode,
    "2bcgskew": _make_2bcgskew,
    "agree": _make_agree,
    "yags": _make_yags,
    "local": _make_local,
    "tournament": _make_tournament,
}


def make_predictor(name: str, size_bytes: int, **kwargs) -> BranchPredictor:
    """Build a predictor of the named scheme within a byte budget.

    ``kwargs`` pass through to the scheme's constructor (history lengths,
    counter widths); see the scheme modules for the accepted knobs.

    >>> make_predictor("gshare", 16 * 1024).table.entries
    65536
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(PREDICTOR_NAMES)
        raise SizingError(f"unknown predictor {name!r}; known schemes: {known}") from None
    return factory(size_bytes, **kwargs)
