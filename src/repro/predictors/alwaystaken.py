"""Trivial baseline predictors.

Not part of the paper's evaluated set, but useful as floors in tests and
examples: a predictor study without an always-taken baseline makes it
easy to misread a broken harness as a good predictor.
"""

from __future__ import annotations

from repro.arch.isa import HintBits
from repro.predictors.base import BranchPredictor

__all__ = ["AlwaysTakenPredictor", "StaticBiasPredictor"]


class AlwaysTakenPredictor(BranchPredictor):
    """Predicts taken for every branch.  Zero hardware."""

    name = "always-taken"

    def predict(self, address: int) -> bool:
        return True

    def update(self, address: int, taken: bool, predicted: bool) -> None:
        pass

    @property
    def size_bytes(self) -> float:
        return 0.0

    def table_entry_counts(self) -> list[int]:
        return []

    def accessed(self) -> list[tuple[int, int]]:
        return []

    def reset(self) -> None:
        pass


class StaticBiasPredictor(BranchPredictor):
    """Pure static prediction from a hint map; default direction otherwise.

    Models the limit case of the paper's scheme where *every* branch is
    statically predicted: the per-branch profile majority direction is
    the prediction, fixed for the whole run.  Used as the upper bound on
    what profile-only prediction can do (and, under cross-training, as a
    demonstration of how badly it can break).
    """

    name = "static-bias"

    def __init__(self, hints: dict[int, HintBits], default_taken: bool = True):
        self.hints = dict(hints)
        self.default_taken = default_taken

    def predict(self, address: int) -> bool:
        hint = self.hints.get(address)
        if hint is not None and hint.use_static:
            return hint.direction
        return self.default_taken

    def update(self, address: int, taken: bool, predicted: bool) -> None:
        pass

    @property
    def size_bytes(self) -> float:
        return 0.0

    def table_entry_counts(self) -> list[int]:
        return []

    def accessed(self) -> list[tuple[int, int]]:
        return []

    def reset(self) -> None:
        pass

    def __repr__(self) -> str:
        return f"<StaticBiasPredictor {len(self.hints)} hints>"
