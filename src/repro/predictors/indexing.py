"""Index functions for predictor tables.

Various branch prediction schemes "differ in the way this table is
indexed" (Section 2 of the paper).  This module collects those index
computations:

* plain PC truncation (bimodal),
* history truncation (ghist),
* PC XOR history (gshare),
* the **e-gskew skewing functions** used by 2bcgskew's gskew banks.
  Seznec & Michaud's skewed indexing sends each branch/history pair to
  *different* counters in each bank, so two branches that collide in one
  bank almost never collide in the others, and the majority vote hides
  single-bank aliasing.  The functions are built from the standard
  invertible GF(2)-linear shuffle ``H`` (a one-bit LFSR-style shift with
  feedback ``y0 XOR y_{n-1}``) and its inverse:

  bank 0: ``H(c1)    XOR Hinv(c2) XOR c3``
  bank 1: ``Hinv(c1) XOR c2       XOR H(c3)``

  where ``c1, c2, c3`` are width-sized chunks of the (PC, history) pair.

``H``/``Hinv`` are precomputed as lookup tables per width because the
simulation loop calls them for every dynamic branch.
"""

from __future__ import annotations

from functools import lru_cache

from repro.errors import ConfigurationError
from repro.utils.bits import ADDRESS_ALIGN_SHIFT, bit_mask, fold_bits

__all__ = [
    "pc_index",
    "gshare_index",
    "fold_history",
    "skew_h",
    "skew_h_inv",
    "SkewTables",
    "skew_tables",
]


def pc_index(address: int, width: int) -> int:
    """Bimodal-style index: low ``width`` bits of the word-aligned PC."""
    return (address >> ADDRESS_ALIGN_SHIFT) & bit_mask(width)


def fold_history(history: int, history_length: int, width: int) -> int:
    """Fold ``history_length`` bits of history into a ``width``-bit value.

    When the configured history is no longer than the index width the
    fold is a plain truncation, which is what hot predictor loops inline.
    """
    value = history & bit_mask(history_length)
    if history_length <= width:
        return value
    return fold_bits(value, width)


def gshare_index(address: int, history: int, history_length: int, width: int) -> int:
    """gshare index: word PC XOR folded history, truncated to ``width``."""
    folded = fold_history(history, history_length, width)
    return ((address >> ADDRESS_ALIGN_SHIFT) ^ folded) & bit_mask(width)


def skew_h(value: int, width: int) -> int:
    """One step of the invertible skewing shuffle ``H``.

    ``H(y)`` shifts ``y`` right by one and feeds ``y0 XOR y_{width-1}``
    into the vacated top bit.  Linear over GF(2) and invertible for every
    width >= 1 (for width 1 it is the identity).
    """
    if width < 1:
        raise ConfigurationError(f"skew width must be >= 1, got {width}")
    if width == 1:
        return value & 1
    value &= bit_mask(width)
    top = (value ^ (value >> (width - 1))) & 1
    return (value >> 1) | (top << (width - 1))


def skew_h_inv(value: int, width: int) -> int:
    """Inverse of :func:`skew_h`.

    From ``r = H(y)``: ``y_i = r_{i-1}`` for ``i >= 1`` and
    ``y_0 = r_{width-1} XOR y_{width-1} = r_{width-1} XOR r_{width-2}``.
    """
    if width < 1:
        raise ConfigurationError(f"skew width must be >= 1, got {width}")
    if width == 1:
        return value & 1
    value &= bit_mask(width)
    top = (value >> (width - 1)) & 1
    second = (value >> (width - 2)) & 1
    y0 = top ^ second
    return ((value << 1) & bit_mask(width)) | y0


class SkewTables:
    """Precomputed ``H``/``Hinv`` lookup tables for one index width.

    The tables make the per-branch cost of skewed indexing two list
    lookups instead of shift/XOR chains, which matters in the pure-Python
    2bcgskew simulation loop.
    """

    __slots__ = ("width", "h", "h_inv")

    def __init__(self, width: int):
        if not 1 <= width <= 20:
            raise ConfigurationError(
                f"skew tables support widths 1..20, got {width} "
                "(a 2**20-entry bank is already a 256 Kbyte predictor)"
            )
        self.width = width
        self.h = [skew_h(v, width) for v in range(1 << width)]
        self.h_inv = [skew_h_inv(v, width) for v in range(1 << width)]

    def check_bijective(self) -> None:
        """Assert H and Hinv are mutually inverse permutations (tests)."""
        size = 1 << self.width
        if sorted(self.h) != list(range(size)):
            raise AssertionError(f"H is not a permutation at width {self.width}")
        for v in range(size):
            if self.h_inv[self.h[v]] != v:
                raise AssertionError(
                    f"Hinv(H({v})) = {self.h_inv[self.h[v]]} at width {self.width}"
                )


@lru_cache(maxsize=32)
def skew_tables(width: int) -> SkewTables:
    """Shared, cached :class:`SkewTables` per width."""
    return SkewTables(width)
