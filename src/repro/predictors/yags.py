"""The YAGS predictor (Eden & Mudge, 1998).

YAGS ("Yet Another Global Scheme") completes the trio of purely dynamic
anti-aliasing schemes contemporary with the paper: where bi-mode
*channels* branches to same-direction banks and agree *re-encodes*
counters relative to a bias bit, YAGS stores only the **exceptions**:

* a PC-indexed bimodal **choice** table provides each branch's default
  direction;
* two small **tagged caches** hold the cases that deviate from the
  default -- the T-cache holds taken-exceptions for branches whose
  choice says not-taken, the NT-cache the reverse.  A branch consults
  the cache opposite to its choice direction; on a tag hit the cache's
  counter predicts, otherwise the choice does.

Tags (a few low PC bits) are what remove destructive aliasing: a cache
entry only speaks for the branch that allocated it.  The scheme is
included as an ablation baseline alongside agree and bi-mode --
the paper's static hints compete with exactly this class of hardware.

Update policy (following Eden & Mudge):

* on a cache hit, the hitting entry's counter trains on the outcome;
* a new cache entry is allocated (tag overwritten, counter seeded toward
  the outcome) when the choice direction mispredicts and no entry
  existed;
* the choice table trains as a bimodal except when its direction was
  wrong but the cache corrected it (the bi-mode exception rule), which
  keeps the default stable for branches served by their exception entry.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.predictors.base import BranchPredictor
from repro.predictors.counters import CounterTable
from repro.predictors.history import GlobalHistory
from repro.utils.bits import ADDRESS_ALIGN_SHIFT, is_power_of_two, log2_exact

__all__ = ["YagsPredictor"]


class YagsPredictor(BranchPredictor):
    """Choice bimodal + two tagged exception caches.

    Table ids for collision instrumentation: 0 = NT-cache (exceptions of
    taken-default branches), 1 = T-cache, 2 = choice.  Tag hits are by
    construction never inter-branch collisions, so the tracker's tags
    measure residual same-index different-tag traffic.
    """

    name = "yags"
    _PREDICT_STATE = ("_last_cache", "_last_cache_index",
                      "_last_choice_index", "_last_choice_taken",
                      "_last_hit", "_last_tag")
    _WIDTHS = {"caches": "counter_bits", "choice": "counter_bits",
               "history": "history_length"}

    def __init__(
        self,
        cache_entries: int,
        choice_entries: int,
        tag_bits: int = 6,
        history_length: int | None = None,
        counter_bits: int = 2,
    ):
        for label, entries in (("cache", cache_entries),
                               ("choice", choice_entries)):
            if not is_power_of_two(entries):
                raise ConfigurationError(
                    f"yags {label} entries must be a power of two, got {entries}"
                )
        if not 1 <= tag_bits <= 16:
            raise ConfigurationError(
                f"yags tag_bits must be in [1, 16], got {tag_bits}"
            )
        cache_width = log2_exact(cache_entries)
        if history_length is None:
            history_length = min(cache_width, 8)
        if not 1 <= history_length <= cache_width:
            raise ConfigurationError(
                f"yags history must be in [1, {cache_width}], got "
                f"{history_length}"
            )
        # Caches: [0] = NT-cache (consulted when choice says taken),
        # [1] = T-cache (consulted when choice says not taken).
        self.caches = (
            CounterTable(cache_entries, bits=counter_bits),
            CounterTable(cache_entries, bits=counter_bits),
        )
        # -1 marks an empty (never allocated) tag slot.
        self.tags: tuple[list[int], list[int]] = (
            [-1] * cache_entries, [-1] * cache_entries,
        )
        self.choice = CounterTable(choice_entries, bits=counter_bits)
        self.history = GlobalHistory(history_length)
        self.tag_bits = tag_bits
        self._tag_mask = (1 << tag_bits) - 1
        self._cache_mask = cache_entries - 1
        self._choice_mask = choice_entries - 1
        self._threshold = self.choice.threshold
        self._max_value = self.choice.max_value
        self._last_cache = 0
        self._last_cache_index = 0
        self._last_choice_index = 0
        self._last_tag = 0
        self._last_hit = False
        self._last_choice_taken = False

    def predict(self, address: int) -> bool:
        pc = address >> ADDRESS_ALIGN_SHIFT
        choice_index = pc & self._choice_mask
        choice_taken = self.choice.values[choice_index] >= self._threshold
        # Consult the cache holding exceptions to the chosen direction.
        cache_id = 0 if choice_taken else 1
        cache_index = (pc ^ self.history.value) & self._cache_mask
        tag = pc & self._tag_mask
        hit = self.tags[cache_id][cache_index] == tag
        self._last_cache = cache_id
        self._last_cache_index = cache_index
        self._last_choice_index = choice_index
        self._last_tag = tag
        self._last_hit = hit
        self._last_choice_taken = choice_taken
        if hit:
            return self.caches[cache_id].values[cache_index] >= self._threshold
        return choice_taken

    def update(self, address: int, taken: bool, predicted: bool) -> None:
        cache_id = self._last_cache
        cache_index = self._last_cache_index
        if self._last_hit:
            values = self.caches[cache_id].values
            value = values[cache_index]
            if taken:
                if value < self._max_value:
                    values[cache_index] = value + 1
            elif value > 0:
                values[cache_index] = value - 1
        elif self._last_choice_taken != taken:
            # The default direction failed and no exception entry existed:
            # allocate one, seeded toward the observed outcome.
            self.tags[cache_id][cache_index] = self._last_tag
            self.caches[cache_id].values[cache_index] = (
                self._threshold if taken else self._threshold - 1
            )

        # Choice trains as bimodal unless it was wrong but the cache
        # corrected it.
        choice_wrong = self._last_choice_taken != taken
        cache_corrected = self._last_hit and predicted == taken
        if not (choice_wrong and cache_corrected):
            values = self.choice.values
            index = self._last_choice_index
            value = values[index]
            if taken:
                if value < self._max_value:
                    values[index] = value + 1
            elif value > 0:
                values[index] = value - 1

        history = self.history
        history.value = ((history.value << 1) | taken) & history.mask

    def shift_history(self, taken: bool) -> None:
        history = self.history
        history.value = ((history.value << 1) | taken) & history.mask

    @property
    def size_bytes(self) -> float:
        cache_bits = sum(
            cache.size_bits + cache.entries * self.tag_bits
            for cache in self.caches
        )
        return (cache_bits + self.choice.size_bits) / 8.0

    def table_entry_counts(self) -> list[int]:
        return [self.caches[0].entries, self.caches[1].entries,
                self.choice.entries]

    def accessed(self) -> list[tuple[int, int]]:
        return [
            (self._last_cache, self._last_cache_index),
            (2, self._last_choice_index),
        ]

    def reset(self) -> None:
        for cache in self.caches:
            cache.reset()
        for tag_list in self.tags:
            for i in range(len(tag_list)):
                tag_list[i] = -1
        self.choice.reset()
        self.history.reset()
        self._last_cache = 0
        self._last_cache_index = 0
        self._last_choice_index = 0
        self._last_tag = 0
        self._last_hit = False
        self._last_choice_taken = False
