"""The bimodal predictor (Smith, 1981).

Section 2 of the paper: "In bimodal branch prediction scheme a table of
saturating up-down counters (typically 2-bit) is maintained in hardware.
This table is indexed with some bits from the address of the conditional
branch being predicted."

Bimodal exploits the *bimodal distribution* of branch behaviour -- most
branches are mostly taken or mostly not taken.  It has essentially no
aliasing at the sizes the paper simulates ("there is very little aliasing
present in a bimodal table of size larger than 2Kbytes"), which is why
combining it with ``Static_95`` yields no improvement: both mechanisms
target the same highly biased branches (one of the paper's headline
observations, Figures 7-12).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.predictors.base import BranchPredictor
from repro.predictors.counters import CounterTable
from repro.utils.bits import ADDRESS_ALIGN_SHIFT, is_power_of_two

__all__ = ["BimodalPredictor"]


class BimodalPredictor(BranchPredictor):
    """PC-indexed table of 2-bit saturating counters."""

    name = "bimodal"
    _PREDICT_STATE = ("_last_index",)
    _WIDTHS = {"table": "counter_bits"}

    def __init__(self, entries: int, counter_bits: int = 2):
        if not is_power_of_two(entries):
            raise ConfigurationError(
                f"bimodal entries must be a power of two, got {entries}"
            )
        self.table = CounterTable(entries, bits=counter_bits)
        self._mask = entries - 1
        self._threshold = self.table.threshold
        self._max_value = self.table.max_value
        self._last_index = 0

    def predict(self, address: int) -> bool:
        index = (address >> ADDRESS_ALIGN_SHIFT) & self._mask
        self._last_index = index
        return self.table.values[index] >= self._threshold

    def update(self, address: int, taken: bool, predicted: bool) -> None:
        index = self._last_index
        values = self.table.values
        value = values[index]
        if taken:
            if value < self._max_value:
                values[index] = value + 1
        elif value > 0:
            values[index] = value - 1

    @property
    def size_bytes(self) -> float:
        return self.table.size_bytes

    def table_entry_counts(self) -> list[int]:
        return [self.table.entries]

    def accessed(self) -> list[tuple[int, int]]:
        return [(0, self._last_index)]

    def reset(self) -> None:
        self.table.reset()
        self._last_index = 0
