"""The predictor protocol shared by every dynamic scheme.

The simulation loop drives predictors through three methods:

``predict(address) -> bool``
    Compute the prediction for the branch at ``address``.  The predictor
    caches whatever per-lookup state (table indices, component
    predictions) its ``update`` needs.
``update(address, taken, predicted)``
    Train on the resolved outcome.  **Contract**: ``update`` is always
    called immediately after ``predict`` for the same branch, with
    ``predicted`` being the value ``predict`` returned.  This models the
    fetch-time lookup / retire-time update of real hardware collapsed to
    one branch in flight, and lets implementations reuse the cached
    lookup state instead of recomputing indices.  A predictor that does
    cache lookup state this way must *declare* it: list every attribute
    ``predict`` assigns and ``update`` reads in a class-level
    ``_PREDICT_STATE`` tuple.  The ``repro lint`` PRED003 rule enforces
    the declaration in both directions (undeclared reads and stale
    entries), so the predictors that genuinely depend on the
    predict-then-update pairing are enumerable rather than discovered
    when a caller breaks the pairing (wrong-path squash, standalone
    update).
``shift_history(taken)``
    Shift an outcome into the predictor's global history register
    *without* touching any counters.  The combined static+dynamic
    predictor calls this for statically predicted branches when the
    "shift" policy of Table 4 is active.  Predictors with no history
    register implement it as a no-op.

For the collision instrumentation (Figures 1-6), predictors also expose
``accessed()``: the list of ``(table_id, index)`` pairs touched by the
most recent ``predict``, plus ``table_entry_counts()`` describing their
tables so the tracker can allocate tag arrays.
"""

from __future__ import annotations

import abc

__all__ = ["BranchPredictor"]


class BranchPredictor(abc.ABC):
    """Abstract base class for all dynamic branch predictors."""

    #: Short scheme name ("bimodal", "gshare", ...); set by subclasses.
    name: str = "abstract"

    #: Attributes assigned by ``predict`` and consumed by ``update``
    #: (cached table indices, component predictions).  Subclasses that
    #: rely on the predict-then-update pairing declare theirs; PRED003
    #: keeps the declaration in sync with the code.
    _PREDICT_STATE: tuple[str, ...] = ()

    @abc.abstractmethod
    def predict(self, address: int) -> bool:
        """Predict the branch at ``address`` (True = taken)."""

    @abc.abstractmethod
    def update(self, address: int, taken: bool, predicted: bool) -> None:
        """Train on the resolved outcome (see module docstring contract)."""

    def shift_history(self, taken: bool) -> None:
        """Shift an outcome into global history without training.

        Default: no-op, correct for history-less predictors (bimodal,
        agree, the static baselines).
        """

    @property
    @abc.abstractmethod
    def size_bytes(self) -> float:
        """Total hardware budget of the predictor's tables, in bytes."""

    @abc.abstractmethod
    def table_entry_counts(self) -> list[int]:
        """Entry counts of each counter table, in table-id order."""

    @abc.abstractmethod
    def accessed(self) -> list[tuple[int, int]]:
        """``(table_id, index)`` pairs touched by the latest predict."""

    def reset(self) -> None:
        """Return the predictor to its power-on state.

        Subclasses with extra state (history registers, cached lookups)
        must extend this.  The default implementation raises so that a
        forgotten override cannot silently reset only part of a
        predictor.
        """
        raise NotImplementedError(f"{type(self).__name__} does not implement reset()")

    def describe(self) -> str:
        """One-line human-readable description."""
        return f"{self.name} ({self.size_bytes:.0f} bytes)"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"
